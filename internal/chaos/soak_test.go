package chaos

import (
	"context"
	"fmt"
	"net"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/workqueue"
)

// soakSchedule is one table entry: a fault schedule plus the cluster
// tuning it is expected to survive.
type soakSchedule struct {
	name string
	spec Spec
	// workers/tasks size the cluster and load.
	workers, tasks int
	// taskTimeout is the master's per-task deadline (recovers dropped
	// frames); maxRetries bounds requeues before quarantine.
	taskTimeout time.Duration
	maxRetries  int
	// batch sets the master's BatchSize: 0 is the lock-step protocol,
	// >1 coalesces tasks into batched frames with a pipelined window —
	// the mode where one dropped connection strands a whole batch.
	batch int
	// maxRetryCount bounds wq_task_retries_total: the regression guard
	// against a hot requeue loop.
	maxRetryCount int64
	// maxTimeouts bounds wq_task_timeouts_total (deadline-miss rate).
	maxTimeouts int64
}

// soakSchedules are the ≥3 distinct seeded schedules of the acceptance
// criteria: a worker crash storm, a 30% message drop, and a scripted
// corrupt-frame burst. CHAOS_SEED overrides every seed for local
// reproduction of a CI failure.
func soakSchedules() []soakSchedule {
	return []soakSchedule{
		{
			name:          "crash-storm",
			spec:          Spec{Seed: 1, Crash: 0.15, Fail: 0.05, Hang: 0.03, HangFor: 30 * time.Second},
			workers:       4,
			tasks:         40,
			taskTimeout:   300 * time.Millisecond,
			maxRetries:    10,
			maxRetryCount: 40 * 11,
			maxTimeouts:   80,
		},
		{
			name:          "message-drop-30pct",
			spec:          Spec{Seed: 7, Drop: 0.30},
			workers:       4,
			tasks:         40,
			taskTimeout:   250 * time.Millisecond,
			maxRetries:    12,
			maxRetryCount: 40 * 13,
			maxTimeouts:   200,
		},
		{
			// Batched frames under a crash/drop storm: a severed
			// connection now strands up to two 8-task frames of un-acked
			// work — every one must be requeued, none double-delivered.
			name:          "crash-storm-batched",
			spec:          Spec{Seed: 4242, Crash: 0.12, Drop: 0.10, Fail: 0.04},
			workers:       4,
			tasks:         40,
			taskTimeout:   300 * time.Millisecond,
			maxRetries:    12,
			maxRetryCount: 40 * 13,
			maxTimeouts:   120,
			batch:         8,
		},
		{
			name: "corrupt-frame-burst",
			spec: Spec{Seed: 1337, Corrupt: 0.05, Drop: 0.02,
				Script: []ScriptedFault{{Fault: FaultCorrupt, From: 10, To: 25}}},
			workers:       4,
			tasks:         40,
			taskTimeout:   300 * time.Millisecond,
			maxRetries:    12,
			maxRetryCount: 40 * 13,
			maxTimeouts:   120,
		},
	}
}

// soakOutcome is what one cluster run produced, for cross-run equality.
type soakOutcome struct {
	completed, failed int
	outputs           map[string]string // taskID -> output of successful tasks
}

// runSoakCluster drives an in-process cluster of restartable workers
// through the schedule until every submitted task is accounted for, or
// the deadline trips (a hang — the one unacceptable outcome).
func runSoakCluster(t *testing.T, sc soakSchedule, reg *obs.Registry, inj *Injector) soakOutcome {
	t.Helper()
	master := workqueue.NewMaster(workqueue.MasterConfig{
		Seed:           11,
		MaxRetries:     sc.maxRetries,
		TaskTimeout:    sc.taskTimeout,
		Metrics:        reg,
		RequeueBackoff: workqueue.BackoffConfig{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond},
		SuspectAfter:   150 * time.Millisecond,
		DeadAfter:      500 * time.Millisecond,
		BatchSize:      sc.batch,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// exec echoes the payload back — the identity the collector checks.
	exec := func(ctx context.Context, payload []byte) ([]byte, error) {
		time.Sleep(time.Millisecond)
		return payload, nil
	}

	// Each worker slot is a restart loop: when an incarnation dies to a
	// chaos fault the next one respawns under a fresh deterministic ID,
	// like the paper's scavenged pool backfilling evicted nodes.
	var wg sync.WaitGroup
	for slot := 0; slot < sc.workers; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for r := 0; ctx.Err() == nil; r++ {
				id := fmt.Sprintf("w%d-r%d", slot, r)
				mconn, wconn := net.Pipe()
				var crashOnce sync.Once
				crash := func() { crashOnce.Do(func() { _ = wconn.Close() }) }
				wg.Add(1)
				go func() {
					defer wg.Done()
					_ = master.HandleWorker(ctx, inj.WrapConn(id+"/m2w", mconn))
				}()
				w := &workqueue.Worker{
					ID:             id,
					Exec:           inj.WrapExec(id, exec, crash),
					HeartbeatEvery: 5 * time.Millisecond,
					ExecTimeout:    100 * time.Millisecond,
				}
				if err := w.Run(ctx, inj.WrapConn(id+"/w2m", wconn)); err == nil {
					return // graceful shutdown
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(slot)
	}

	for i := 0; i < sc.tasks; i++ {
		id := fmt.Sprintf("t%03d", i)
		if err := master.Submit(workqueue.Task{ID: id, JobID: "soak", Payload: []byte(id)}); err != nil {
			t.Fatalf("submit %s: %v", id, err)
		}
	}

	out := soakOutcome{outputs: make(map[string]string)}
	seen := make(map[string]bool)
	deadline := time.After(90 * time.Second)
	for len(seen) < sc.tasks {
		select {
		case r := <-master.Results():
			if seen[r.TaskID] {
				t.Errorf("task %s delivered twice", r.TaskID)
			}
			seen[r.TaskID] = true
			if r.Err != "" {
				out.failed++
			} else {
				out.completed++
				out.outputs[r.TaskID] = string(r.Output)
			}
		case <-deadline:
			t.Fatalf("cluster hung: %d/%d tasks accounted for after 90s (status %+v)",
				len(seen), sc.tasks, master.Status())
		}
	}

	// Teardown: stop respawns first so shutdown isn't raced by fresh
	// workers, and keep draining Results until Shutdown closes it.
	cancel()
	go func() {
		for range master.Results() {
		}
	}()
	master.Shutdown()
	wg.Wait()
	return out
}

// counterValue digs one counter out of a registry snapshot.
func counterValue(reg *obs.Registry, name string) int64 {
	return reg.Snapshot().Counters[name]
}

// TestChaosSoak is the headline harness: an N-worker in-process cluster
// survives each scripted fault schedule with (a) no task lost or
// double-delivered, (b) goroutines back to baseline, (c) retry and
// deadline-miss counts bounded, and (d) identical outcomes when the
// same seed is replayed.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	for _, sc := range soakSchedules() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			if env := os.Getenv("CHAOS_SEED"); env != "" {
				seed, err := strconv.ParseInt(env, 10, 64)
				if err != nil {
					t.Fatalf("bad CHAOS_SEED %q: %v", env, err)
				}
				sc.spec.Seed = seed
			}
			defer func() {
				if t.Failed() {
					t.Logf("reproduce with: CHAOS_SEED=%d go test -race -run 'TestChaosSoak/%s' ./internal/chaos",
						sc.spec.Seed, sc.name)
				}
			}()
			baseline := runtime.NumGoroutine()

			reg := obs.NewRegistry()
			inj := New(sc.spec, reg, nil)
			out := runSoakCluster(t, sc, reg, inj)

			if out.completed+out.failed != sc.tasks {
				t.Fatalf("task accounting: %d completed + %d failed != %d submitted",
					out.completed, out.failed, sc.tasks)
			}
			for id, echoed := range out.outputs {
				if echoed != id {
					t.Errorf("task %s echoed %q — payload corrupted end to end", id, echoed)
				}
			}
			if inj.InjectedCount() == 0 {
				t.Fatal("schedule injected no faults — the soak tested nothing")
			}
			if retries := counterValue(reg, "wq_task_retries_total"); retries > sc.maxRetryCount {
				t.Errorf("retries %d exceed bound %d (hot requeue loop?)", retries, sc.maxRetryCount)
			}
			if timeouts := counterValue(reg, "wq_task_timeouts_total"); timeouts > sc.maxTimeouts {
				t.Errorf("deadline misses %d exceed bound %d", timeouts, sc.maxTimeouts)
			}

			// Replaying the same seed must reproduce the identical fault
			// plan — compare a prefix of every stream the run touched.
			replay := New(sc.spec, nil, nil)
			streams := map[string]bool{}
			for _, ev := range inj.Events() {
				streams[ev.Stream] = true
			}
			for s := range streams {
				if !equalPlans(inj.Plan(s, 256), replay.Plan(s, 256)) {
					t.Errorf("stream %s: replayed plan diverged for seed %d", s, sc.spec.Seed)
				}
			}

			// Goroutines must return to (near) baseline: no leaked
			// handlers, heartbeat loops, timers or hung executors.
			waitForGoroutines(t, baseline+5, 5*time.Second)
		})
	}
}

// waitForGoroutines polls until the goroutine count drops to the bound
// (teardown is asynchronous: severed workers and timers unwind on their
// own schedule).
func waitForGoroutines(t *testing.T, bound int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		n := runtime.NumGoroutine()
		if n <= bound {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d alive (bound %d)\n%s", n, bound, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosSoakDeterministicOutcome replays the drop schedule twice with
// the same seed and requires identical decoded outcomes — the "same
// fault sequence twice" acceptance criterion at the cluster level.
func TestChaosSoakDeterministicOutcome(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	sc := soakSchedule{
		name:          "replay",
		spec:          Spec{Seed: 99, Drop: 0.15, Fail: 0.05},
		workers:       3,
		tasks:         24,
		taskTimeout:   250 * time.Millisecond,
		maxRetries:    12,
		maxRetryCount: 24 * 13,
		maxTimeouts:   120,
	}
	var outs [2]soakOutcome
	var plans [2][]string
	for i := 0; i < 2; i++ {
		reg := obs.NewRegistry()
		inj := New(sc.spec, reg, nil)
		outs[i] = runSoakCluster(t, sc, reg, inj)
		plans[i] = inj.Plan("w0-r0/w2m", 256)
	}
	if !equalPlans(plans[0], plans[1]) {
		t.Fatal("same seed produced different fault plans across runs")
	}
	// Timing jitter may shift which attempt lands, but the task set and
	// its payload integrity are invariant.
	if outs[0].completed+outs[0].failed != sc.tasks || outs[1].completed+outs[1].failed != sc.tasks {
		t.Fatalf("task accounting differs from submission: %+v vs %+v", outs[0], outs[1])
	}
	for id, v := range outs[0].outputs {
		if v != id {
			t.Errorf("run 1 corrupted %s -> %q", id, v)
		}
	}
	for id, v := range outs[1].outputs {
		if v != id {
			t.Errorf("run 2 corrupted %s -> %q", id, v)
		}
	}
}
