package chaos

// BenchmarkWireTasksPerSecLatentConn is the batching headline number:
// tasks/sec through ONE master↔worker connection whose every frame pays
// a fixed 250µs delivery delay (the chaos delay fault at probability 1,
// modeling a serialized network link). The lock-step protocol pays two
// frame delays per task — dispatch and ack — so it is latency-bound at
// ~2k tasks/s regardless of codec speed; a 64-task batched window
// amortizes those delays across the whole batch. The ratio between the
// two sub-benchmarks is the Eq. 10 transfer-term improvement BENCH_wire
// records (≥10× expected).

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/workqueue"
)

func BenchmarkWireTasksPerSecLatentConn(b *testing.B) {
	for _, bc := range []struct {
		name  string
		batch int
	}{
		{"lockstep", 0},
		{"batched64", 64},
	} {
		b.Run(bc.name, func(b *testing.B) {
			const frameDelay = 250 * time.Microsecond
			inj := New(Spec{Seed: 1, Delay: 1, DelayMin: frameDelay, DelayMax: frameDelay}, nil, nil)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			m := workqueue.NewMaster(workqueue.MasterConfig{Seed: 1, ResultBuffer: 1024, BatchSize: bc.batch})
			p := workqueue.NewPool(m, func(_ context.Context, payload []byte) ([]byte, error) {
				return payload, nil
			})
			p.WrapConn = func(mc, wc net.Conn) (net.Conn, net.Conn) {
				return inj.WrapConn("bench/m2w", mc), inj.WrapConn("bench/w2m", wc)
			}
			defer p.Close()
			p.Resize(ctx, 1)
			payload := []byte(`{"claim":"claim-17","reports":[{"s":"src-1","t":"2017-04-01T10:00:00Z"}]}`)

			b.ReportAllocs()
			b.ResetTimer()
			go func() {
				for i := 0; i < b.N; i++ {
					_ = m.Submit(workqueue.Task{ID: fmt.Sprintf("t%d", i), JobID: "bench", Payload: payload})
				}
			}()
			for i := 0; i < b.N; i++ {
				<-m.Results()
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
		})
	}
}
