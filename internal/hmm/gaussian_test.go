package hmm

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// gaussRef is a well-separated two-state Gaussian model.
func gaussRef() *Gaussian {
	m, err := NewGaussian([]float64{-3, 3}, []float64{1, 1})
	if err != nil {
		panic(err)
	}
	m.A = [][]float64{{0.9, 0.1}, {0.1, 0.9}}
	m.Pi = []float64{0.5, 0.5}
	return m
}

func sampleGauss(m *Gaussian, T int, rng *rand.Rand) (obs []float64, states []int) {
	obs = make([]float64, T)
	states = make([]int, T)
	st := drawFrom(m.Pi, rng)
	for t := 0; t < T; t++ {
		states[t] = st
		obs[t] = m.Mean[st] + rng.NormFloat64()*math.Sqrt(m.Var[st])
		st = drawFrom(m.A[st], rng)
	}
	return obs, states
}

func TestNewGaussianValidation(t *testing.T) {
	if _, err := NewGaussian(nil, nil); err == nil {
		t.Error("empty means accepted")
	}
	if _, err := NewGaussian([]float64{0}, []float64{0, 1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := NewGaussian([]float64{0}, []float64{-1}); err == nil {
		t.Error("negative variance accepted")
	}
	m, err := NewGaussian([]float64{-1, 1}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.States() != 2 {
		t.Errorf("States() = %d", m.States())
	}
}

func TestGaussianViterbiRecoversStates(t *testing.T) {
	m := gaussRef()
	rng := rand.New(rand.NewSource(17))
	obs, states := sampleGauss(m, 300, rng)
	path, _, err := m.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for i := range path {
		if path[i] != states[i] {
			wrong++
		}
	}
	if frac := float64(wrong) / float64(len(path)); frac > 0.05 {
		t.Errorf("Viterbi error rate %.3f, want <= 0.05", frac)
	}
}

func TestGaussianForwardBackwardConsistency(t *testing.T) {
	m := gaussRef()
	rng := rand.New(rand.NewSource(23))
	obs, _ := sampleGauss(m, 60, rng)
	alpha, scale, _, err := m.Forward(obs)
	if err != nil {
		t.Fatal(err)
	}
	beta, err := m.Backward(obs, scale)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < len(obs); tt++ {
		sum := alpha[tt][0]*beta[tt][0] + alpha[tt][1]*beta[tt][1]
		want := 1 / scale[tt]
		if math.Abs(sum-want) > 1e-9*math.Abs(want) {
			t.Fatalf("alpha·beta at t=%d is %v, want 1/scale = %v", tt, sum, want)
		}
	}
}

func TestGaussianBaumWelchRecoversMeans(t *testing.T) {
	truth := gaussRef()
	rng := rand.New(rand.NewSource(29))
	var seqs [][]float64
	for i := 0; i < 8; i++ {
		obs, _ := sampleGauss(truth, 200, rng)
		seqs = append(seqs, obs)
	}
	m, err := NewGaussian([]float64{-1, 1}, []float64{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.BaumWelch(seqs, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Fatal("no iterations ran")
	}
	lo, hi := m.Mean[0], m.Mean[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	if math.Abs(lo-(-3)) > 0.5 || math.Abs(hi-3) > 0.5 {
		t.Errorf("means not recovered: %v", m.Mean)
	}
	for i, v := range m.Var {
		if v < m.varFloor() {
			t.Errorf("var[%d] = %v below floor", i, v)
		}
	}
}

func TestGaussianBaumWelchMonotone(t *testing.T) {
	truth := gaussRef()
	rng := rand.New(rand.NewSource(41))
	obs, _ := sampleGauss(truth, 150, rng)
	m, _ := NewGaussian([]float64{-0.5, 0.5}, []float64{2, 2})
	cfg := DefaultTrainConfig()
	cfg.MaxIterations = 1
	cfg.SmoothA, cfg.SmoothPi = 0, 0
	prev := math.Inf(-1)
	for i := 0; i < 12; i++ {
		res, err := m.BaumWelch([][]float64{obs}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.LogLikelihood < prev-1e-6 {
			t.Fatalf("iteration %d decreased LL: %v -> %v", i, prev, res.LogLikelihood)
		}
		prev = res.LogLikelihood
	}
}

func TestGaussianVarianceFloorPreventsCollapse(t *testing.T) {
	// Identical observations would drive variance to zero without the
	// floor.
	m, _ := NewGaussian([]float64{0, 1}, []float64{1, 1})
	obs := make([]float64, 50) // all zeros
	if _, err := m.BaumWelch([][]float64{obs}, DefaultTrainConfig()); err != nil {
		t.Fatal(err)
	}
	for i, v := range m.Var {
		if v < m.varFloor() {
			t.Errorf("var[%d] = %v collapsed below floor", i, v)
		}
		if math.IsNaN(v) {
			t.Errorf("var[%d] is NaN", i)
		}
	}
}

func TestGaussianErrors(t *testing.T) {
	m := gaussRef()
	if _, _, _, err := m.Forward(nil); !errors.Is(err, ErrEmptySequence) {
		t.Errorf("Forward(nil) err = %v", err)
	}
	if _, _, err := m.Viterbi(nil); !errors.Is(err, ErrEmptySequence) {
		t.Errorf("Viterbi(nil) err = %v", err)
	}
	if _, err := m.BaumWelch([][]float64{{}}, DefaultTrainConfig()); !errors.Is(err, ErrEmptySequence) {
		t.Errorf("BaumWelch empty seq err = %v", err)
	}
	if _, err := m.Backward([]float64{0}, []float64{1, 2}); err == nil {
		t.Error("Backward wrong scale accepted")
	}
}

func TestGaussianSingleObservation(t *testing.T) {
	m := gaussRef()
	path, _, err := m.Viterbi([]float64{2.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 || path[0] != 1 {
		t.Errorf("Viterbi(2.9) = %v, want state 1", path)
	}
}
