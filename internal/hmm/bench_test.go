package hmm_test

import (
	"math/rand"
	"testing"

	"github.com/social-sensing/sstd/internal/hmm"
	"github.com/social-sensing/sstd/internal/hmm/hmmtest"
)

// The *Seed benchmarks run the frozen pre-rewrite kernels from hmmtest on
// identical inputs, so `go test -bench . -benchmem` puts the before/after
// numbers side by side on the same machine. scripts/check.sh bench
// flattens both into BENCH_hmm.json, the tracked baseline.

const (
	benchT   = 128
	benchSym = 5
	// benchIters fixes the EM work per op: the tolerance is unreachable,
	// so every op runs exactly this many full iterations.
	benchIters = 10
)

func benchCfg() hmm.TrainConfig {
	return hmm.TrainConfig{
		MaxIterations: benchIters,
		Tolerance:     1e-300,
		SmoothA:       1e-3,
		SmoothB:       1e-3,
		SmoothPi:      1e-3,
	}
}

func benchModelAndObs() (*hmm.Discrete, []int) {
	rng := rand.New(rand.NewSource(42))
	return randDiscrete(rng, 2, benchSym), randObs(rng, benchT, benchSym)
}

func BenchmarkBaumWelch(b *testing.B) {
	m, obs := benchModelAndObs()
	pristine := m.Clone()
	seqs := [][]int{obs}
	cfg := benchCfg()
	ws := hmm.NewWorkspace()
	if _, err := m.BaumWelchWS(ws, seqs, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		restoreDiscrete(m, pristine)
		if _, err := m.BaumWelchWS(ws, seqs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaumWelchSeed(b *testing.B) {
	m, obs := benchModelAndObs()
	pristine := m.Clone()
	seqs := [][]int{obs}
	cfg := benchCfg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		restoreDiscrete(m, pristine)
		if _, err := hmmtest.BaumWelch(m, seqs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkViterbi(b *testing.B) {
	m, obs := benchModelAndObs()
	ws := hmm.NewWorkspace()
	path := make([]int, len(obs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		path, _, err = m.ViterbiWS(ws, obs, path)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkViterbiSeed(b *testing.B) {
	m, obs := benchModelAndObs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path, _ := hmmtest.Viterbi(m, obs)
		if len(path) != len(obs) {
			b.Fatal("bad path")
		}
	}
}

func BenchmarkGaussianBaumWelch(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	m := randGaussian(rng, 2)
	obs := randGaussObs(rng, benchT)
	pristine := m.Clone()
	seqs := [][]float64{obs}
	cfg := benchCfg()
	ws := hmm.NewWorkspace()
	if _, err := m.BaumWelchWS(ws, seqs, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		restoreGaussian(m, pristine)
		if _, err := m.BaumWelchWS(ws, seqs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGaussianBaumWelchSeed(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	m := randGaussian(rng, 2)
	obs := randGaussObs(rng, benchT)
	pristine := m.Clone()
	seqs := [][]float64{obs}
	cfg := benchCfg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		restoreGaussian(m, pristine)
		if _, err := hmmtest.GaussBaumWelch(m, seqs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
