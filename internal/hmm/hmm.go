// Package hmm implements the Hidden Markov Model machinery the SSTD scheme
// is built on (§III of the paper): scaled forward-backward inference,
// unsupervised Baum-Welch (EM) parameter estimation (Eq. 5) and Viterbi
// decoding (Eq. 6-8). Two emission families are provided: discrete symbols
// (used with a quantized ACS alphabet) and univariate Gaussians (used with
// raw ACS values).
//
// Every algorithm runs on flat, strided kernels backed by a reusable
// Workspace (the *WS entry points), which perform zero heap allocations in
// steady state. The original matrix-returning API is kept intact and
// delegates to the kernels through a pooled workspace.
package hmm

import (
	"errors"
	"fmt"
	"math"

	"github.com/social-sensing/sstd/internal/obs/flightrec"
)

// Common errors.
var (
	ErrEmptySequence = errors.New("hmm: observation sequence is empty")
	ErrBadSymbol     = errors.New("hmm: observation symbol out of range")
)

// Discrete is a discrete-emission HMM with N hidden states and M
// observation symbols.
type Discrete struct {
	// A[i][j] is the transition probability from state i to state j.
	A [][]float64
	// B[i][k] is the probability of emitting symbol k in state i.
	B [][]float64
	// Pi[i] is the initial state distribution.
	Pi []float64
}

// NewDiscrete allocates a model with uniform parameters.
func NewDiscrete(states, symbols int) (*Discrete, error) {
	if states < 1 || symbols < 1 {
		return nil, fmt.Errorf("hmm: need >=1 states and symbols, got %d, %d", states, symbols)
	}
	m := &Discrete{
		A:  uniformMatrix(states, states),
		B:  uniformMatrix(states, symbols),
		Pi: uniformVector(states),
	}
	return m, nil
}

// States returns the number of hidden states.
func (m *Discrete) States() int { return len(m.Pi) }

// Symbols returns the size of the observation alphabet.
func (m *Discrete) Symbols() int {
	if len(m.B) == 0 {
		return 0
	}
	return len(m.B[0])
}

// Validate checks that all rows are probability distributions.
func (m *Discrete) Validate() error {
	n := m.States()
	if len(m.A) != n || len(m.B) != n {
		return fmt.Errorf("hmm: inconsistent dimensions (pi=%d, A=%d, B=%d)", n, len(m.A), len(m.B))
	}
	if err := checkDistribution("pi", m.Pi); err != nil {
		return err
	}
	for i := range m.A {
		if len(m.A[i]) != n {
			return fmt.Errorf("hmm: A row %d has %d entries, want %d", i, len(m.A[i]), n)
		}
		if err := checkDistribution(fmt.Sprintf("A[%d]", i), m.A[i]); err != nil {
			return err
		}
	}
	sym := m.Symbols()
	for i := range m.B {
		if len(m.B[i]) != sym {
			return fmt.Errorf("hmm: B row %d has %d entries, want %d", i, len(m.B[i]), sym)
		}
		if err := checkDistribution(fmt.Sprintf("B[%d]", i), m.B[i]); err != nil {
			return err
		}
	}
	return nil
}

// Clone returns a deep copy of the model.
func (m *Discrete) Clone() *Discrete {
	return &Discrete{
		A:  cloneMatrix(m.A),
		B:  cloneMatrix(m.B),
		Pi: cloneVector(m.Pi),
	}
}

// checkObs validates an observation sequence against the alphabet.
func (m *Discrete) checkObs(obs []int) error {
	if len(obs) == 0 {
		return ErrEmptySequence
	}
	sym := m.Symbols()
	for t, o := range obs {
		if o < 0 || o >= sym {
			return fmt.Errorf("%w: obs[%d]=%d, alphabet size %d", ErrBadSymbol, t, o, sym)
		}
	}
	return nil
}

// forwardWS is the scaled forward kernel. It assumes ws.loadDiscrete(m)
// has run and obs is valid; it fills ws.alpha (T*n row-major) and
// ws.scale (T) and returns the total log-likelihood.
func (m *Discrete) forwardWS(ws *Workspace, obs []int) (float64, error) {
	n, sym, T := m.States(), m.Symbols(), len(obs)
	ws.alpha = growF(ws.alpha, T*n)
	ws.scale = growF(ws.scale, T)
	a, b, alpha, scale := ws.a, ws.b, ws.alpha, ws.scale
	if n == 2 {
		// The decoder's models are always 2-state; the unrolled recursion
		// keeps both alpha entries in registers across steps.
		a00, a01, a10, a11 := a[0], a[1], a[2], a[3]
		p0 := m.Pi[0] * b[obs[0]]
		p1 := m.Pi[1] * b[sym+obs[0]]
		s := p0 + p1
		scale[0] = s
		if s > 0 {
			inv := 1 / s
			p0 *= inv
			p1 *= inv
		}
		alpha[0], alpha[1] = p0, p1
		for t := 1; t < T; t++ {
			ot := obs[t]
			q0 := (p0*a00 + p1*a10) * b[ot]
			q1 := (p0*a01 + p1*a11) * b[sym+ot]
			s := q0 + q1
			scale[t] = s
			if s > 0 {
				inv := 1 / s
				q0 *= inv
				q1 *= inv
			}
			alpha[t*2], alpha[t*2+1] = q0, q1
			p0, p1 = q0, q1
		}
	} else {
		for i := 0; i < n; i++ {
			alpha[i] = m.Pi[i] * b[i*sym+obs[0]]
		}
		scale[0] = scaleRow(alpha[:n])
		for t := 1; t < T; t++ {
			prev := alpha[(t-1)*n : t*n]
			cur := alpha[t*n : (t+1)*n]
			for j := 0; j < n; j++ {
				sum := 0.0
				for i := 0; i < n; i++ {
					sum += prev[i] * a[i*n+j]
				}
				cur[j] = sum * b[j*sym+obs[t]]
			}
			scale[t] = scaleRow(cur)
		}
	}
	logProb := 0.0
	for t := 0; t < T; t++ {
		if scale[t] <= 0 {
			return 0, fmt.Errorf("hmm: zero-probability observation at t=%d", t)
		}
		logProb += math.Log(scale[t])
	}
	return logProb, nil
}

// backwardWS is the scaled backward kernel, reusing the forward scaling
// coefficients in scale. It assumes ws.loadDiscrete(m) has run; it fills
// ws.beta (T*n row-major).
func (m *Discrete) backwardWS(ws *Workspace, obs []int, scale []float64) {
	n, sym, T := m.States(), m.Symbols(), len(obs)
	ws.beta = growF(ws.beta, T*n)
	a, b, beta := ws.a, ws.b, ws.beta
	if n == 2 {
		a00, a01, a10, a11 := a[0], a[1], a[2], a[3]
		p0 := 1 / scale[T-1]
		p1 := p0
		beta[(T-1)*2], beta[(T-1)*2+1] = p0, p1
		for t := T - 2; t >= 0; t-- {
			on := obs[t+1]
			e0 := b[on] * p0
			e1 := b[sym+on] * p1
			inv := 1 / scale[t]
			p0 = (a00*e0 + a01*e1) * inv
			p1 = (a10*e0 + a11*e1) * inv
			beta[t*2], beta[t*2+1] = p0, p1
		}
		return
	}
	for i := 0; i < n; i++ {
		beta[(T-1)*n+i] = 1 / scale[T-1]
	}
	// The emission-weighted next-step betas b[j][obs[t+1]]*next[j] are
	// shared by every source state i; stage them in ws.gamma so the inner
	// recursion is a plain dot product, and scale by a single reciprocal
	// instead of n divisions.
	ws.gamma = growF(ws.gamma, n)
	en := ws.gamma
	for t := T - 2; t >= 0; t-- {
		next := beta[(t+1)*n : (t+2)*n]
		cur := beta[t*n : (t+1)*n]
		on := obs[t+1]
		for j := 0; j < n; j++ {
			en[j] = b[j*sym+on] * next[j]
		}
		inv := 1 / scale[t]
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += a[i*n+j] * en[j]
			}
			cur[i] = sum * inv
		}
	}
}

// ForwardWS runs the scaled forward kernel on ws and returns views of the
// scaled alpha lattice (T*n row-major) and the scaling coefficients, plus
// the total log-likelihood. The returned slices are backed by ws and are
// valid until the next kernel call on it; steady state performs zero heap
// allocations.
func (m *Discrete) ForwardWS(ws *Workspace, obs []int) (alpha, scale []float64, logProb float64, err error) {
	if err := m.checkObs(obs); err != nil {
		return nil, nil, 0, err
	}
	ws.loadDiscrete(m)
	lp, err := m.forwardWS(ws, obs)
	if err != nil {
		return nil, nil, 0, err
	}
	return ws.alpha, ws.scale, lp, nil
}

// BackwardWS runs the scaled backward kernel on ws with the forward
// scaling coefficients and returns the beta lattice (T*n row-major, backed
// by ws, valid until the next kernel call).
func (m *Discrete) BackwardWS(ws *Workspace, obs []int, scale []float64) ([]float64, error) {
	if err := m.checkObs(obs); err != nil {
		return nil, err
	}
	if len(scale) != len(obs) {
		return nil, fmt.Errorf("hmm: scale length %d != T %d", len(scale), len(obs))
	}
	ws.loadDiscrete(m)
	m.backwardWS(ws, obs, scale)
	return ws.beta, nil
}

// Forward runs the scaled forward algorithm and returns the per-step scaled
// alpha matrix, the scaling coefficients and the total log-likelihood
// log P(obs | model).
func (m *Discrete) Forward(obs []int) (alpha [][]float64, scale []float64, logProb float64, err error) {
	if err := m.checkObs(obs); err != nil {
		return nil, nil, 0, err
	}
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	ws.loadDiscrete(m)
	lp, err := m.forwardWS(ws, obs)
	if err != nil {
		return nil, nil, 0, err
	}
	n, T := m.States(), len(obs)
	return unflatten(ws.alpha, T, n), cloneVector(ws.scale[:T]), lp, nil
}

// Backward runs the scaled backward algorithm reusing the forward scaling
// coefficients.
func (m *Discrete) Backward(obs []int, scale []float64) ([][]float64, error) {
	if err := m.checkObs(obs); err != nil {
		return nil, err
	}
	n, T := m.States(), len(obs)
	if len(scale) != T {
		return nil, fmt.Errorf("hmm: scale length %d != T %d", len(scale), T)
	}
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	ws.loadDiscrete(m)
	m.backwardWS(ws, obs, scale)
	return unflatten(ws.beta, T, n), nil
}

// LogLikelihood returns log P(obs | model).
func (m *Discrete) LogLikelihood(obs []int) (float64, error) {
	if err := m.checkObs(obs); err != nil {
		return 0, err
	}
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	ws.loadDiscrete(m)
	return m.forwardWS(ws, obs)
}

// posteriorWS computes gamma[t*n+i] = P(state_t = i | obs) into dst
// (grown as needed) from the alpha/beta lattices already in ws.
func posteriorWS(ws *Workspace, dst []float64, T, n int) []float64 {
	dst = growF(dst, T*n)
	alpha, beta := ws.alpha, ws.beta
	for t := 0; t < T; t++ {
		row := dst[t*n : (t+1)*n]
		sum := 0.0
		for i := 0; i < n; i++ {
			row[i] = alpha[t*n+i] * beta[t*n+i]
			sum += row[i]
		}
		if sum > 0 {
			for i := 0; i < n; i++ {
				row[i] /= sum
			}
		}
	}
	return dst
}

// PosteriorWS computes the flat posterior lattice gamma[t*n+i] =
// P(state_t = i | obs, model) into dst, growing it only when its capacity
// is insufficient, and returns it. Steady state performs zero heap
// allocations.
func (m *Discrete) PosteriorWS(ws *Workspace, obs []int, dst []float64) ([]float64, error) {
	if err := m.checkObs(obs); err != nil {
		return nil, err
	}
	ws.loadDiscrete(m)
	if _, err := m.forwardWS(ws, obs); err != nil {
		return nil, err
	}
	m.backwardWS(ws, obs, ws.scale)
	return posteriorWS(ws, dst, len(obs), m.States()), nil
}

// Posterior returns gamma[t][i] = P(state_t = i | obs, model).
func (m *Discrete) Posterior(obs []int) ([][]float64, error) {
	if err := m.checkObs(obs); err != nil {
		return nil, err
	}
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	n, T := m.States(), len(obs)
	flat := makeVector(T * n)
	if _, err := m.PosteriorWS(ws, obs, flat); err != nil {
		return nil, err
	}
	return unflatten(flat, T, n), nil
}

// viterbiWS is the Viterbi kernel over precomputed log-space parameters:
// ws.la/ws.lp hold log transitions and log initial probabilities and
// ws.le the T*n emission log lattice (filled by the caller). Pure flat
// arithmetic — no math.Log calls, no closures, no allocations beyond
// growing path when its capacity is insufficient.
func viterbiWS(ws *Workspace, T, n int, path []int) ([]int, float64) {
	ws.delta = growF(ws.delta, T*n)
	ws.psi = growI32(ws.psi, T*n)
	la, lp, le, delta, psi := ws.la, ws.lp, ws.le, ws.delta, ws.psi
	for i := 0; i < n; i++ {
		delta[i] = lp[i] + le[i]
	}
	for t := 1; t < T; t++ {
		prev := delta[(t-1)*n : t*n]
		for j := 0; j < n; j++ {
			best := math.Inf(-1)
			arg := 0
			for i := 0; i < n; i++ {
				v := prev[i] + la[i*n+j]
				if v > best {
					best = v
					arg = i
				}
			}
			delta[t*n+j] = best + le[t*n+j]
			psi[t*n+j] = int32(arg)
		}
	}
	best := math.Inf(-1)
	last := 0
	for i := 0; i < n; i++ {
		if delta[(T-1)*n+i] > best {
			best = delta[(T-1)*n+i]
			last = i
		}
	}
	if cap(path) < T {
		path = make([]int, T)
	}
	path = path[:T]
	path[T-1] = last
	for t := T - 1; t > 0; t-- {
		path[t-1] = int(psi[t*n+path[t]])
	}
	return path, best
}

// ViterbiWS decodes the most likely hidden state sequence into path
// (grown only when its capacity is insufficient) and returns it with its
// log probability. Steady state performs zero heap allocations: the
// log-space parameters and the emission log lattice are precomputed once
// per call into ws, so the lattice recursion is pure flat arithmetic.
func (m *Discrete) ViterbiWS(ws *Workspace, obs []int, path []int) ([]int, float64, error) {
	if err := m.checkObs(obs); err != nil {
		return nil, 0, err
	}
	tp := ws.ring().Start()
	n, sym := ws.loadDiscreteLogs(m)
	T := len(obs)
	ws.le = growF(ws.le, T*n)
	le, lb := ws.le, ws.lb
	for t, o := range obs {
		for i := 0; i < n; i++ {
			le[t*n+i] = lb[i*sym+o]
		}
	}
	path, best := viterbiWS(ws, T, n, path)
	ws.fr.Probe(flightrec.ProbeHMMViterbi, tp, int64(T), ws.frParent)
	return path, best, nil
}

// Viterbi returns the most likely hidden state sequence for obs and its log
// probability (Eq. 7-8 of the paper).
func (m *Discrete) Viterbi(obs []int) ([]int, float64, error) {
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	return m.ViterbiWS(ws, obs, nil)
}

// --- shared helpers ---

func uniformMatrix(rows, cols int) [][]float64 {
	m := makeMatrix(rows, cols)
	v := 1 / float64(cols)
	for i := range m {
		for j := range m[i] {
			m[i][j] = v
		}
	}
	return m
}

func uniformVector(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 / float64(n)
	}
	return v
}

func makeVector(n int) []float64 { return make([]float64, n) }

func makeMatrix(rows, cols int) [][]float64 {
	return sliceRows(make([]float64, rows*cols), rows, cols)
}

// sliceRows carves a rows×cols backing array into row views.
func sliceRows(backing []float64, rows, cols int) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i], backing = backing[:cols:cols], backing[cols:]
	}
	return m
}

// unflatten copies a flat row-major lattice into a freshly allocated
// rows×cols matrix (the compatibility shape of the original API).
func unflatten(flat []float64, rows, cols int) [][]float64 {
	backing := make([]float64, rows*cols)
	copy(backing, flat[:rows*cols])
	return sliceRows(backing, rows, cols)
}

func cloneMatrix(m [][]float64) [][]float64 {
	out := makeMatrix(len(m), len(m[0]))
	for i := range m {
		copy(out[i], m[i])
	}
	return out
}

func cloneVector(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// normalizeRow scales row to sum 1 and returns the original sum.
func normalizeRow(row []float64) float64 {
	sum := 0.0
	for _, v := range row {
		sum += v
	}
	if sum > 0 {
		for i := range row {
			row[i] /= sum
		}
	}
	return sum
}

// scaleRow is normalizeRow for the lattice hot paths: one division and n
// multiplies instead of n divisions. The reciprocal form differs from
// element-wise division only in the last ulp, well inside the kernels'
// 1e-12 equivalence budget; the M-step keeps normalizeRow so re-estimated
// parameters stay in the seed's exact arithmetic.
func scaleRow(row []float64) float64 {
	sum := 0.0
	for _, v := range row {
		sum += v
	}
	if sum > 0 {
		inv := 1 / sum
		for i := range row {
			row[i] *= inv
		}
	}
	return sum
}

func checkDistribution(name string, row []float64) error {
	sum := 0.0
	for i, v := range row {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("hmm: %s[%d] = %v is not a probability", name, i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("hmm: %s sums to %v, want 1", name, sum)
	}
	return nil
}

func safeLog(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return math.Log(x)
}
