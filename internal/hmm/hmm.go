// Package hmm implements the Hidden Markov Model machinery the SSTD scheme
// is built on (§III of the paper): scaled forward-backward inference,
// unsupervised Baum-Welch (EM) parameter estimation (Eq. 5) and Viterbi
// decoding (Eq. 6-8). Two emission families are provided: discrete symbols
// (used with a quantized ACS alphabet) and univariate Gaussians (used with
// raw ACS values).
package hmm

import (
	"errors"
	"fmt"
	"math"
)

// Common errors.
var (
	ErrEmptySequence = errors.New("hmm: observation sequence is empty")
	ErrBadSymbol     = errors.New("hmm: observation symbol out of range")
)

// Discrete is a discrete-emission HMM with N hidden states and M
// observation symbols.
type Discrete struct {
	// A[i][j] is the transition probability from state i to state j.
	A [][]float64
	// B[i][k] is the probability of emitting symbol k in state i.
	B [][]float64
	// Pi[i] is the initial state distribution.
	Pi []float64
}

// NewDiscrete allocates a model with uniform parameters.
func NewDiscrete(states, symbols int) (*Discrete, error) {
	if states < 1 || symbols < 1 {
		return nil, fmt.Errorf("hmm: need >=1 states and symbols, got %d, %d", states, symbols)
	}
	m := &Discrete{
		A:  uniformMatrix(states, states),
		B:  uniformMatrix(states, symbols),
		Pi: uniformVector(states),
	}
	return m, nil
}

// States returns the number of hidden states.
func (m *Discrete) States() int { return len(m.Pi) }

// Symbols returns the size of the observation alphabet.
func (m *Discrete) Symbols() int {
	if len(m.B) == 0 {
		return 0
	}
	return len(m.B[0])
}

// Validate checks that all rows are probability distributions.
func (m *Discrete) Validate() error {
	n := m.States()
	if len(m.A) != n || len(m.B) != n {
		return fmt.Errorf("hmm: inconsistent dimensions (pi=%d, A=%d, B=%d)", n, len(m.A), len(m.B))
	}
	if err := checkDistribution("pi", m.Pi); err != nil {
		return err
	}
	for i := range m.A {
		if len(m.A[i]) != n {
			return fmt.Errorf("hmm: A row %d has %d entries, want %d", i, len(m.A[i]), n)
		}
		if err := checkDistribution(fmt.Sprintf("A[%d]", i), m.A[i]); err != nil {
			return err
		}
	}
	sym := m.Symbols()
	for i := range m.B {
		if len(m.B[i]) != sym {
			return fmt.Errorf("hmm: B row %d has %d entries, want %d", i, len(m.B[i]), sym)
		}
		if err := checkDistribution(fmt.Sprintf("B[%d]", i), m.B[i]); err != nil {
			return err
		}
	}
	return nil
}

// Clone returns a deep copy of the model.
func (m *Discrete) Clone() *Discrete {
	return &Discrete{
		A:  cloneMatrix(m.A),
		B:  cloneMatrix(m.B),
		Pi: cloneVector(m.Pi),
	}
}

// checkObs validates an observation sequence against the alphabet.
func (m *Discrete) checkObs(obs []int) error {
	if len(obs) == 0 {
		return ErrEmptySequence
	}
	sym := m.Symbols()
	for t, o := range obs {
		if o < 0 || o >= sym {
			return fmt.Errorf("%w: obs[%d]=%d, alphabet size %d", ErrBadSymbol, t, o, sym)
		}
	}
	return nil
}

// Forward runs the scaled forward algorithm and returns the per-step scaled
// alpha matrix, the scaling coefficients and the total log-likelihood
// log P(obs | model).
func (m *Discrete) Forward(obs []int) (alpha [][]float64, scale []float64, logProb float64, err error) {
	if err := m.checkObs(obs); err != nil {
		return nil, nil, 0, err
	}
	n, T := m.States(), len(obs)
	alpha = makeMatrix(T, n)
	scale = make([]float64, T)
	for i := 0; i < n; i++ {
		alpha[0][i] = m.Pi[i] * m.B[i][obs[0]]
	}
	scale[0] = normalizeRow(alpha[0])
	for t := 1; t < T; t++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for i := 0; i < n; i++ {
				sum += alpha[t-1][i] * m.A[i][j]
			}
			alpha[t][j] = sum * m.B[j][obs[t]]
		}
		scale[t] = normalizeRow(alpha[t])
	}
	for t := 0; t < T; t++ {
		if scale[t] <= 0 {
			return nil, nil, 0, fmt.Errorf("hmm: zero-probability observation at t=%d", t)
		}
		logProb += math.Log(scale[t])
	}
	return alpha, scale, logProb, nil
}

// Backward runs the scaled backward algorithm reusing the forward scaling
// coefficients.
func (m *Discrete) Backward(obs []int, scale []float64) ([][]float64, error) {
	if err := m.checkObs(obs); err != nil {
		return nil, err
	}
	n, T := m.States(), len(obs)
	if len(scale) != T {
		return nil, fmt.Errorf("hmm: scale length %d != T %d", len(scale), T)
	}
	beta := makeMatrix(T, n)
	for i := 0; i < n; i++ {
		beta[T-1][i] = 1 / scale[T-1]
	}
	for t := T - 2; t >= 0; t-- {
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += m.A[i][j] * m.B[j][obs[t+1]] * beta[t+1][j]
			}
			beta[t][i] = sum / scale[t]
		}
	}
	return beta, nil
}

// LogLikelihood returns log P(obs | model).
func (m *Discrete) LogLikelihood(obs []int) (float64, error) {
	_, _, lp, err := m.Forward(obs)
	return lp, err
}

// Posterior returns gamma[t][i] = P(state_t = i | obs, model).
func (m *Discrete) Posterior(obs []int) ([][]float64, error) {
	alpha, scale, _, err := m.Forward(obs)
	if err != nil {
		return nil, err
	}
	beta, err := m.Backward(obs, scale)
	if err != nil {
		return nil, err
	}
	T, n := len(obs), m.States()
	gamma := makeMatrix(T, n)
	for t := 0; t < T; t++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			gamma[t][i] = alpha[t][i] * beta[t][i]
			sum += gamma[t][i]
		}
		if sum > 0 {
			for i := 0; i < n; i++ {
				gamma[t][i] /= sum
			}
		}
	}
	return gamma, nil
}

// Viterbi returns the most likely hidden state sequence for obs and its log
// probability (Eq. 7-8 of the paper).
func (m *Discrete) Viterbi(obs []int) ([]int, float64, error) {
	if err := m.checkObs(obs); err != nil {
		return nil, 0, err
	}
	n, T := m.States(), len(obs)
	delta := makeMatrix(T, n)
	psi := make([][]int, T)
	for t := range psi {
		psi[t] = make([]int, n)
	}
	for i := 0; i < n; i++ {
		delta[0][i] = safeLog(m.Pi[i]) + safeLog(m.B[i][obs[0]])
	}
	for t := 1; t < T; t++ {
		for j := 0; j < n; j++ {
			best := math.Inf(-1)
			arg := 0
			for i := 0; i < n; i++ {
				v := delta[t-1][i] + safeLog(m.A[i][j])
				if v > best {
					best = v
					arg = i
				}
			}
			delta[t][j] = best + safeLog(m.B[j][obs[t]])
			psi[t][j] = arg
		}
	}
	best := math.Inf(-1)
	last := 0
	for i := 0; i < n; i++ {
		if delta[T-1][i] > best {
			best = delta[T-1][i]
			last = i
		}
	}
	path := make([]int, T)
	path[T-1] = last
	for t := T - 1; t > 0; t-- {
		path[t-1] = psi[t][path[t]]
	}
	return path, best, nil
}

// --- shared helpers ---

func uniformMatrix(rows, cols int) [][]float64 {
	m := makeMatrix(rows, cols)
	v := 1 / float64(cols)
	for i := range m {
		for j := range m[i] {
			m[i][j] = v
		}
	}
	return m
}

func uniformVector(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 / float64(n)
	}
	return v
}

func makeMatrix(rows, cols int) [][]float64 {
	backing := make([]float64, rows*cols)
	m := make([][]float64, rows)
	for i := range m {
		m[i], backing = backing[:cols:cols], backing[cols:]
	}
	return m
}

func cloneMatrix(m [][]float64) [][]float64 {
	out := makeMatrix(len(m), len(m[0]))
	for i := range m {
		copy(out[i], m[i])
	}
	return out
}

func cloneVector(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// normalizeRow scales row to sum 1 and returns the original sum.
func normalizeRow(row []float64) float64 {
	sum := 0.0
	for _, v := range row {
		sum += v
	}
	if sum > 0 {
		for i := range row {
			row[i] /= sum
		}
	}
	return sum
}

func checkDistribution(name string, row []float64) error {
	sum := 0.0
	for i, v := range row {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("hmm: %s[%d] = %v is not a probability", name, i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("hmm: %s sums to %v, want 1", name, sum)
	}
	return nil
}

func safeLog(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return math.Log(x)
}
