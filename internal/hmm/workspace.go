package hmm

import (
	"math"
	"sync"

	"github.com/social-sensing/sstd/internal/obs/flightrec"
)

// Workspace holds the flat, strided scratch buffers behind every HMM
// kernel: the model parameters flattened row-major (probability and
// log space), the forward/backward lattices, the Baum-Welch expected-count
// accumulators and the Viterbi lattice with its backpointers. Buffers grow
// on demand and are retained between calls, so a warmed workspace makes
// the steady-state kernels (BaumWelchWS, ViterbiWS, PosteriorWS) perform
// zero heap allocations — the property the per-task WCET budget of the
// paper's control loop (Eq. 10) depends on.
//
// A Workspace is not safe for concurrent use; give each goroutine its own
// (NewWorkspace) or borrow one from the shared pool (GetWorkspace /
// PutWorkspace), which is what the old allocating entry points do
// internally.
type Workspace struct {
	// Flattened parameters, loaded from a model at kernel entry.
	a  []float64 // A, n*n row-major
	b  []float64 // B, n*sym row-major (discrete only)
	la []float64 // log A, n*n (Viterbi)
	lb []float64 // log B, n*sym (discrete Viterbi)
	lp []float64 // log Pi, n (Viterbi)

	// Gaussian emission precomputes: density(i,x) =
	// gCoef[i] * exp((x-mean)^2 * gNegInv[i]) with gCoef = 1/(σ√2π) and
	// gNegInv = -1/(2σ²); gLogCoef carries log gCoef for log-space Viterbi.
	gCoef    []float64
	gNegInv  []float64
	gLogCoef []float64

	// Lattices: alpha/beta/delta/le are T*n row-major, scale is T,
	// psi holds the T*n Viterbi backpointers; le is the per-step emission
	// log lattice Viterbi runs on.
	alpha []float64
	beta  []float64
	delta []float64
	le    []float64
	scale []float64
	psi   []int32

	// Baum-Welch accumulators and per-step scratch.
	piAcc []float64 // n
	aNum  []float64 // n*n
	bNum  []float64 // n*sym (discrete)
	gSum  []float64 // n (gaussian gamma mass)
	oSum  []float64 // n (gaussian weighted obs)
	oSq   []float64 // n (gaussian weighted obs²)
	gamma []float64 // n per-step posterior scratch
	row   []float64 // max(n, sym) old-row scratch for warm-start deltas

	// Flight-recorder hookup: kernels probe phase timings into fr (one
	// private ring per workspace — the workspace's single-goroutine
	// contract makes it single-writer), tagging events with frParent,
	// the tracer span that owns the current work. Both stay zero-cost
	// when no recorder is enabled.
	fr       *flightrec.Ring
	frParent int64
}

// SetFlightParent tags subsequent kernel probe events with the owning
// tracer span ID (0 clears) — e.g. the dtm decode span, so a deep-dive
// dump nests EM iterations under the job that ran them.
func (ws *Workspace) SetFlightParent(parent int64) { ws.frParent = parent }

// ring returns the workspace's flight-recorder ring, acquiring it
// lazily (and caching it) once a recorder is enabled. With no recorder
// the lookup is an atomic load + nil check per kernel call.
func (ws *Workspace) ring() *flightrec.Ring {
	if ws.fr == nil {
		ws.fr = flightrec.Fresh("hmm")
	}
	return ws.fr
}

// NewWorkspace returns an empty workspace; buffers are allocated lazily by
// the first kernel call and reused afterwards.
func NewWorkspace() *Workspace { return new(Workspace) }

var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

// GetWorkspace borrows a workspace from the shared pool. Return it with
// PutWorkspace when the kernel results have been consumed.
func GetWorkspace() *Workspace { return wsPool.Get().(*Workspace) }

// PutWorkspace returns a workspace to the shared pool. The caller must not
// touch buffers handed out by kernels on this workspace afterwards.
func PutWorkspace(ws *Workspace) {
	if ws != nil {
		wsPool.Put(ws)
	}
}

// growF returns s resized to n entries, reallocating only when the
// capacity is insufficient. Contents are unspecified; kernels fully
// overwrite or explicitly zero what they use.
func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// zeroF clears s (compiles to a memclr).
func zeroF(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// loadDiscrete flattens m's parameters into the workspace for the
// probability-space kernels (forward, backward, Baum-Welch E-step).
func (ws *Workspace) loadDiscrete(m *Discrete) (n, sym int) {
	n, sym = m.States(), m.Symbols()
	ws.a = growF(ws.a, n*n)
	for i, row := range m.A {
		copy(ws.a[i*n:(i+1)*n], row)
	}
	ws.b = growF(ws.b, n*sym)
	for i, row := range m.B {
		copy(ws.b[i*sym:(i+1)*sym], row)
	}
	return n, sym
}

// loadDiscreteLogs flattens m's parameters in log space for Viterbi, so
// the lattice recursion performs no math.Log calls.
func (ws *Workspace) loadDiscreteLogs(m *Discrete) (n, sym int) {
	n, sym = m.States(), m.Symbols()
	ws.la = growF(ws.la, n*n)
	for i, row := range m.A {
		for j, v := range row {
			ws.la[i*n+j] = safeLog(v)
		}
	}
	ws.lb = growF(ws.lb, n*sym)
	for i, row := range m.B {
		for k, v := range row {
			ws.lb[i*sym+k] = safeLog(v)
		}
	}
	ws.lp = growF(ws.lp, n)
	for i, v := range m.Pi {
		ws.lp[i] = safeLog(v)
	}
	return n, sym
}

// loadGaussian flattens A and precomputes the per-state density constants
// 1/(σ√2π) and -1/(2σ²) so each emission density costs one multiply and
// one exp instead of a division and a square root.
func (ws *Workspace) loadGaussian(m *Gaussian) int {
	n := m.States()
	ws.a = growF(ws.a, n*n)
	for i, row := range m.A {
		copy(ws.a[i*n:(i+1)*n], row)
	}
	ws.gCoef = growF(ws.gCoef, n)
	ws.gNegInv = growF(ws.gNegInv, n)
	for i := 0; i < n; i++ {
		v := m.Var[i]
		ws.gCoef[i] = 1 / math.Sqrt(2*math.Pi*v)
		ws.gNegInv[i] = -1 / (2 * v)
	}
	return n
}

// loadGaussianLogs additionally prepares log-space constants for Viterbi:
// log density(i,x) = gLogCoef[i] + (x-mean)² * gNegInv[i]. Working in log
// space directly also keeps far-tail observations finite where the
// exp-then-log form underflows to -Inf.
func (ws *Workspace) loadGaussianLogs(m *Gaussian) int {
	n := ws.loadGaussian(m)
	ws.la = growF(ws.la, n*n)
	for i, row := range m.A {
		for j, v := range row {
			ws.la[i*n+j] = safeLog(v)
		}
	}
	ws.lp = growF(ws.lp, n)
	for i, v := range m.Pi {
		ws.lp[i] = safeLog(v)
	}
	ws.gLogCoef = growF(ws.gLogCoef, n)
	for i := 0; i < n; i++ {
		ws.gLogCoef[i] = safeLog(ws.gCoef[i])
	}
	return n
}
