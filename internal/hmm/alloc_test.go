package hmm_test

import (
	"math/rand"
	"testing"

	"github.com/social-sensing/sstd/internal/hmm"
)

// The workspace kernels promise zero steady-state heap allocations — the
// property that keeps long-running TD workers free of GC-driven latency
// spikes. These tests pin it with testing.AllocsPerRun on explicitly-owned
// workspaces (the pool would make the measurements GC-dependent). One
// warm-up call sizes every buffer; after that, any allocation is a
// regression.

func restoreDiscrete(dst, src *hmm.Discrete) {
	copy(dst.Pi, src.Pi)
	for i := range dst.A {
		copy(dst.A[i], src.A[i])
		copy(dst.B[i], src.B[i])
	}
}

func restoreGaussian(dst, src *hmm.Gaussian) {
	copy(dst.Pi, src.Pi)
	for i := range dst.A {
		copy(dst.A[i], src.A[i])
	}
	copy(dst.Mean, src.Mean)
	copy(dst.Var, src.Var)
}

func TestDiscreteBaumWelchWSZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randDiscrete(rng, 2, 5)
	pristine := m.Clone()
	obs := randObs(rng, 64, 5)
	seqs := [][]int{obs}
	cfg := hmm.TrainConfig{MaxIterations: 5, Tolerance: 1e-300, SmoothA: 1e-3, SmoothB: 1e-3, SmoothPi: 1e-3}
	ws := hmm.NewWorkspace()
	if _, err := m.BaumWelchWS(ws, seqs, cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		restoreDiscrete(m, pristine)
		if _, err := m.BaumWelchWS(ws, seqs, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("BaumWelchWS allocates %.1f objects per run, want 0", allocs)
	}
}

func TestDiscreteViterbiWSZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randDiscrete(rng, 2, 5)
	obs := randObs(rng, 64, 5)
	ws := hmm.NewWorkspace()
	path := make([]int, len(obs))
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		path, _, err = m.ViterbiWS(ws, obs, path)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("ViterbiWS allocates %.1f objects per run, want 0", allocs)
	}
}

func TestDiscretePosteriorWSZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randDiscrete(rng, 2, 5)
	obs := randObs(rng, 64, 5)
	ws := hmm.NewWorkspace()
	dst := make([]float64, len(obs)*2)
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		dst, err = m.PosteriorWS(ws, obs, dst)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("PosteriorWS allocates %.1f objects per run, want 0", allocs)
	}
}

func TestGaussianBaumWelchWSZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randGaussian(rng, 2)
	pristine := m.Clone()
	obs := randGaussObs(rng, 64)
	seqs := [][]float64{obs}
	cfg := hmm.TrainConfig{MaxIterations: 5, Tolerance: 1e-300, SmoothA: 1e-3, SmoothPi: 1e-3}
	ws := hmm.NewWorkspace()
	if _, err := m.BaumWelchWS(ws, seqs, cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		restoreGaussian(m, pristine)
		if _, err := m.BaumWelchWS(ws, seqs, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("gaussian BaumWelchWS allocates %.1f objects per run, want 0", allocs)
	}
}

func TestGaussianViterbiWSZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randGaussian(rng, 2)
	obs := randGaussObs(rng, 64)
	ws := hmm.NewWorkspace()
	path := make([]int, len(obs))
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		path, _, err = m.ViterbiWS(ws, obs, path)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("gaussian ViterbiWS allocates %.1f objects per run, want 0", allocs)
	}
}
