package hmm_test

import (
	"math"
	"math/rand"
	"testing"

	"github.com/social-sensing/sstd/internal/hmm"
	"github.com/social-sensing/sstd/internal/hmm/hmmtest"
)

// equivTol is the drift budget against the frozen seed kernels: the
// rewritten kernels use reciprocal-multiply scaling, precomputed Gaussian
// density constants and log-space Viterbi, each of which may drift from
// the seed arithmetic by a few ulps but never near 1e-12.
const equivTol = 1e-12

func close2(got, want float64) bool {
	diff := math.Abs(got - want)
	return diff <= equivTol*math.Max(1, math.Abs(want))
}

func randRow(rng *rand.Rand, n int) []float64 {
	row := make([]float64, n)
	sum := 0.0
	for i := range row {
		row[i] = 0.05 + rng.Float64()
		sum += row[i]
	}
	for i := range row {
		row[i] /= sum
	}
	return row
}

func randDiscrete(rng *rand.Rand, n, sym int) *hmm.Discrete {
	m := &hmm.Discrete{
		A:  make([][]float64, n),
		B:  make([][]float64, n),
		Pi: randRow(rng, n),
	}
	for i := 0; i < n; i++ {
		m.A[i] = randRow(rng, n)
		m.B[i] = randRow(rng, sym)
	}
	return m
}

func randObs(rng *rand.Rand, T, sym int) []int {
	obs := make([]int, T)
	for t := range obs {
		obs[t] = rng.Intn(sym)
	}
	return obs
}

func randGaussian(rng *rand.Rand, n int) *hmm.Gaussian {
	means := make([]float64, n)
	vars := make([]float64, n)
	for i := 0; i < n; i++ {
		means[i] = -3 + 6*rng.Float64()
		vars[i] = 0.3 + 2*rng.Float64()
	}
	m, err := hmm.NewGaussian(means, vars)
	if err != nil {
		panic(err)
	}
	m.Pi = randRow(rng, n)
	for i := 0; i < n; i++ {
		m.A[i] = randRow(rng, n)
	}
	return m
}

func randGaussObs(rng *rand.Rand, T int) []float64 {
	obs := make([]float64, T)
	for t := range obs {
		obs[t] = -4 + 8*rng.Float64()
	}
	return obs
}

func TestDiscreteKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	ws := hmm.NewWorkspace()
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(3)
		sym := 2 + rng.Intn(4)
		m := randDiscrete(rng, n, sym)
		obs := randObs(rng, 3+rng.Intn(70), sym)

		wantAlpha, wantScale, wantLL, err := hmmtest.Forward(m, obs)
		if err != nil {
			t.Fatalf("trial %d: reference forward: %v", trial, err)
		}
		gotAlpha, gotScale, gotLL, err := m.ForwardWS(ws, obs)
		if err != nil {
			t.Fatalf("trial %d: ForwardWS: %v", trial, err)
		}
		if !close2(gotLL, wantLL) {
			t.Fatalf("trial %d: logProb %v, reference %v", trial, gotLL, wantLL)
		}
		for tt := range obs {
			if !close2(gotScale[tt], wantScale[tt]) {
				t.Fatalf("trial %d: scale[%d] %v vs %v", trial, tt, gotScale[tt], wantScale[tt])
			}
			for i := 0; i < n; i++ {
				if !close2(gotAlpha[tt*n+i], wantAlpha[tt][i]) {
					t.Fatalf("trial %d: alpha[%d][%d] %v vs %v", trial, tt, i, gotAlpha[tt*n+i], wantAlpha[tt][i])
				}
			}
		}

		wantBeta := hmmtest.Backward(m, obs, wantScale)
		gotBeta, err := m.BackwardWS(ws, obs, gotScale)
		if err != nil {
			t.Fatalf("trial %d: BackwardWS: %v", trial, err)
		}
		for tt := range obs {
			for i := 0; i < n; i++ {
				if !close2(gotBeta[tt*n+i], wantBeta[tt][i]) {
					t.Fatalf("trial %d: beta[%d][%d] %v vs %v", trial, tt, i, gotBeta[tt*n+i], wantBeta[tt][i])
				}
			}
		}

		wantGamma, err := hmmtest.Posterior(m, obs)
		if err != nil {
			t.Fatalf("trial %d: reference posterior: %v", trial, err)
		}
		gotGamma, err := m.PosteriorWS(ws, obs, nil)
		if err != nil {
			t.Fatalf("trial %d: PosteriorWS: %v", trial, err)
		}
		for tt := range obs {
			for i := 0; i < n; i++ {
				if !close2(gotGamma[tt*n+i], wantGamma[tt][i]) {
					t.Fatalf("trial %d: gamma[%d][%d] %v vs %v", trial, tt, i, gotGamma[tt*n+i], wantGamma[tt][i])
				}
			}
		}

		wantPath, wantScore := hmmtest.Viterbi(m, obs)
		gotPath, gotScore, err := m.ViterbiWS(ws, obs, nil)
		if err != nil {
			t.Fatalf("trial %d: ViterbiWS: %v", trial, err)
		}
		if !close2(gotScore, wantScore) {
			t.Fatalf("trial %d: viterbi score %v vs %v", trial, gotScore, wantScore)
		}
		for tt := range wantPath {
			if gotPath[tt] != wantPath[tt] {
				t.Fatalf("trial %d: path[%d] = %d, reference %d", trial, tt, gotPath[tt], wantPath[tt])
			}
		}
	}
}

func TestDiscreteBaumWelchMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(2)
		sym := 3 + rng.Intn(3)
		m1 := randDiscrete(rng, n, sym)
		m2 := m1.Clone()
		nseq := 1 + rng.Intn(3)
		seqs := make([][]int, nseq)
		for s := range seqs {
			seqs[s] = randObs(rng, 10+rng.Intn(40), sym)
		}
		cfg := hmm.TrainConfig{
			MaxIterations: 8,
			Tolerance:     1e-12,
			SmoothA:       1e-3,
			SmoothB:       1e-3,
			SmoothPi:      1e-3,
		}
		if trial%3 == 0 {
			cfg.FreezeEmissions = true
		}
		r1, err := m1.BaumWelch(seqs, cfg)
		if err != nil {
			t.Fatalf("trial %d: BaumWelch: %v", trial, err)
		}
		r2, err := hmmtest.BaumWelch(m2, seqs, cfg)
		if err != nil {
			t.Fatalf("trial %d: reference BaumWelch: %v", trial, err)
		}
		if r1.Iterations != r2.Iterations || !close2(r1.LogLikelihood, r2.LogLikelihood) {
			t.Fatalf("trial %d: result %+v vs reference %+v", trial, r1, r2)
		}
		for i := 0; i < n; i++ {
			if !close2(m1.Pi[i], m2.Pi[i]) {
				t.Fatalf("trial %d: Pi[%d] %v vs %v", trial, i, m1.Pi[i], m2.Pi[i])
			}
			for j := 0; j < n; j++ {
				if !close2(m1.A[i][j], m2.A[i][j]) {
					t.Fatalf("trial %d: A[%d][%d] %v vs %v", trial, i, j, m1.A[i][j], m2.A[i][j])
				}
			}
			for k := 0; k < sym; k++ {
				if !close2(m1.B[i][k], m2.B[i][k]) {
					t.Fatalf("trial %d: B[%d][%d] %v vs %v", trial, i, k, m1.B[i][k], m2.B[i][k])
				}
			}
		}
	}
}

func TestGaussianKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	ws := hmm.NewWorkspace()
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(3)
		m := randGaussian(rng, n)
		obs := randGaussObs(rng, 3+rng.Intn(70))

		wantAlpha, wantScale, wantLL, err := hmmtest.GaussForward(m, obs)
		if err != nil {
			t.Fatalf("trial %d: reference forward: %v", trial, err)
		}
		gotAlpha, gotScale, gotLL, err := m.ForwardWS(ws, obs)
		if err != nil {
			t.Fatalf("trial %d: ForwardWS: %v", trial, err)
		}
		if !close2(gotLL, wantLL) {
			t.Fatalf("trial %d: logProb %v vs %v", trial, gotLL, wantLL)
		}
		for tt := range obs {
			for i := 0; i < n; i++ {
				if !close2(gotAlpha[tt*n+i], wantAlpha[tt][i]) {
					t.Fatalf("trial %d: alpha[%d][%d] %v vs %v", trial, tt, i, gotAlpha[tt*n+i], wantAlpha[tt][i])
				}
			}
		}

		wantBeta := hmmtest.GaussBackward(m, obs, wantScale)
		gotBeta, err := m.BackwardWS(ws, obs, gotScale)
		if err != nil {
			t.Fatalf("trial %d: BackwardWS: %v", trial, err)
		}
		for tt := range obs {
			for i := 0; i < n; i++ {
				if !close2(gotBeta[tt*n+i], wantBeta[tt][i]) {
					t.Fatalf("trial %d: beta[%d][%d] %v vs %v", trial, tt, i, gotBeta[tt*n+i], wantBeta[tt][i])
				}
			}
		}

		wantPath, wantScore := hmmtest.GaussViterbi(m, obs)
		gotPath, gotScore, err := m.ViterbiWS(ws, obs, nil)
		if err != nil {
			t.Fatalf("trial %d: ViterbiWS: %v", trial, err)
		}
		if !close2(gotScore, wantScore) {
			t.Fatalf("trial %d: viterbi score %v vs %v", trial, gotScore, wantScore)
		}
		for tt := range wantPath {
			if gotPath[tt] != wantPath[tt] {
				t.Fatalf("trial %d: path[%d] = %d, reference %d", trial, tt, gotPath[tt], wantPath[tt])
			}
		}
	}
}

func TestGaussianBaumWelchMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 25; trial++ {
		n := 2
		m1 := randGaussian(rng, n)
		m2 := m1.Clone()
		seqs := [][]float64{randGaussObs(rng, 20+rng.Intn(40))}
		cfg := hmm.TrainConfig{
			MaxIterations: 8,
			Tolerance:     1e-12,
			SmoothA:       1e-3,
			SmoothPi:      1e-3,
		}
		r1, err := m1.BaumWelch(seqs, cfg)
		if err != nil {
			t.Fatalf("trial %d: BaumWelch: %v", trial, err)
		}
		r2, err := hmmtest.GaussBaumWelch(m2, seqs, cfg)
		if err != nil {
			t.Fatalf("trial %d: reference BaumWelch: %v", trial, err)
		}
		if r1.Iterations != r2.Iterations || !close2(r1.LogLikelihood, r2.LogLikelihood) {
			t.Fatalf("trial %d: result %+v vs reference %+v", trial, r1, r2)
		}
		for i := 0; i < n; i++ {
			if !close2(m1.Pi[i], m2.Pi[i]) || !close2(m1.Mean[i], m2.Mean[i]) || !close2(m1.Var[i], m2.Var[i]) {
				t.Fatalf("trial %d: state %d params (%v,%v,%v) vs (%v,%v,%v)",
					trial, i, m1.Pi[i], m1.Mean[i], m1.Var[i], m2.Pi[i], m2.Mean[i], m2.Var[i])
			}
			for j := 0; j < n; j++ {
				if !close2(m1.A[i][j], m2.A[i][j]) {
					t.Fatalf("trial %d: A[%d][%d] %v vs %v", trial, i, j, m1.A[i][j], m2.A[i][j])
				}
			}
		}
	}
}

// TestOldAPIMatchesReference pins the exported seed-signature entry points
// (which now delegate to the workspace kernels through the pool) to the
// reference implementations too.
func TestOldAPIMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for trial := 0; trial < 20; trial++ {
		n, sym := 2, 5
		m := randDiscrete(rng, n, sym)
		obs := randObs(rng, 30, sym)
		_, _, wantLL, err := hmmtest.Forward(m, obs)
		if err != nil {
			t.Fatal(err)
		}
		gotLL, err := m.LogLikelihood(obs)
		if err != nil {
			t.Fatal(err)
		}
		if !close2(gotLL, wantLL) {
			t.Fatalf("trial %d: LogLikelihood %v vs %v", trial, gotLL, wantLL)
		}
		wantGamma, err := hmmtest.Posterior(m, obs)
		if err != nil {
			t.Fatal(err)
		}
		gotGamma, err := m.Posterior(obs)
		if err != nil {
			t.Fatal(err)
		}
		for tt := range obs {
			for i := 0; i < n; i++ {
				if !close2(gotGamma[tt][i], wantGamma[tt][i]) {
					t.Fatalf("trial %d: gamma[%d][%d] %v vs %v", trial, tt, i, gotGamma[tt][i], wantGamma[tt][i])
				}
			}
		}
		wantPath, _ := hmmtest.Viterbi(m, obs)
		gotPath, _, err := m.Viterbi(obs)
		if err != nil {
			t.Fatal(err)
		}
		for tt := range wantPath {
			if gotPath[tt] != wantPath[tt] {
				t.Fatalf("trial %d: path[%d] = %d, reference %d", trial, tt, gotPath[tt], wantPath[tt])
			}
		}
	}
}
