package hmm

import (
	"encoding/json"
	"fmt"
)

// The paper trains its per-claim HMMs offline (§III-C) and decodes online;
// serialization lets a deployment persist trained parameter sets λ_u and
// ship them to the decoding tier.

// discreteJSON is the stable wire form of a Discrete model.
type discreteJSON struct {
	A  [][]float64 `json:"transitions"`
	B  [][]float64 `json:"emissions"`
	Pi []float64   `json:"initial"`
}

// MarshalJSON implements json.Marshaler.
func (m *Discrete) MarshalJSON() ([]byte, error) {
	return json.Marshal(discreteJSON{A: m.A, B: m.B, Pi: m.Pi})
}

// UnmarshalJSON implements json.Unmarshaler and validates the decoded
// model.
func (m *Discrete) UnmarshalJSON(raw []byte) error {
	var w discreteJSON
	if err := json.Unmarshal(raw, &w); err != nil {
		return fmt.Errorf("hmm: decode discrete model: %w", err)
	}
	restored := Discrete{A: w.A, B: w.B, Pi: w.Pi}
	if err := restored.Validate(); err != nil {
		return fmt.Errorf("hmm: deserialized model invalid: %w", err)
	}
	*m = restored
	return nil
}

// gaussianJSON is the stable wire form of a Gaussian model.
type gaussianJSON struct {
	A        [][]float64 `json:"transitions"`
	Pi       []float64   `json:"initial"`
	Mean     []float64   `json:"means"`
	Var      []float64   `json:"variances"`
	VarFloor float64     `json:"varianceFloor,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (m *Gaussian) MarshalJSON() ([]byte, error) {
	return json.Marshal(gaussianJSON{A: m.A, Pi: m.Pi, Mean: m.Mean, Var: m.Var, VarFloor: m.VarFloor})
}

// UnmarshalJSON implements json.Unmarshaler and validates the decoded
// model.
func (m *Gaussian) UnmarshalJSON(raw []byte) error {
	var w gaussianJSON
	if err := json.Unmarshal(raw, &w); err != nil {
		return fmt.Errorf("hmm: decode gaussian model: %w", err)
	}
	if len(w.Pi) == 0 || len(w.Mean) != len(w.Pi) || len(w.Var) != len(w.Pi) || len(w.A) != len(w.Pi) {
		return fmt.Errorf("hmm: deserialized gaussian model has inconsistent dimensions")
	}
	for i, v := range w.Var {
		if v <= 0 {
			return fmt.Errorf("hmm: deserialized variance[%d] = %v not positive", i, v)
		}
	}
	if err := checkDistribution("pi", w.Pi); err != nil {
		return err
	}
	for i := range w.A {
		if len(w.A[i]) != len(w.Pi) {
			return fmt.Errorf("hmm: deserialized A row %d has %d entries", i, len(w.A[i]))
		}
		if err := checkDistribution(fmt.Sprintf("A[%d]", i), w.A[i]); err != nil {
			return err
		}
	}
	*m = Gaussian{A: w.A, Pi: w.Pi, Mean: w.Mean, Var: w.Var, VarFloor: w.VarFloor}
	return nil
}
