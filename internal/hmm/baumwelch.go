package hmm

import (
	"fmt"
	"math"
)

// TrainConfig controls Baum-Welch training.
type TrainConfig struct {
	// MaxIterations bounds EM iterations. Default 100.
	MaxIterations int
	// Tolerance stops training when the log-likelihood improvement per
	// iteration drops below it. Default 1e-6.
	Tolerance float64
	// SmoothA, SmoothB and SmoothPi are pseudo-counts added to the
	// re-estimated transition, emission and initial distributions to keep
	// every probability strictly positive (important for short, sparse
	// social sensing sequences). Defaults 1e-3.
	SmoothA, SmoothB, SmoothPi float64
	// FreezeEmissions skips the emission (B) re-estimation, fitting only
	// the transition matrix and initial distribution. With informative
	// emission priors and a single short training sequence per claim,
	// full EM can drift the state semantics; freezing B keeps the states
	// anchored while still learning the truth dynamics.
	FreezeEmissions bool
}

// DefaultTrainConfig returns the default training settings.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		MaxIterations: 100,
		Tolerance:     1e-6,
		SmoothA:       1e-3,
		SmoothB:       1e-3,
		SmoothPi:      1e-3,
	}
}

func (c *TrainConfig) fillDefaults() {
	if c.MaxIterations <= 0 {
		c.MaxIterations = 100
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-6
	}
}

// TrainResult reports how training went.
type TrainResult struct {
	Iterations    int
	LogLikelihood float64
	Converged     bool
}

// BaumWelch fits the model in place to one or more observation sequences by
// expectation maximization (the paper's Eq. 5, solved with the classic
// Baum 1970 procedure), returning the final log-likelihood. Multiple
// sequences are combined by accumulating expected counts across sequences.
func (m *Discrete) BaumWelch(sequences [][]int, cfg TrainConfig) (TrainResult, error) {
	cfg.fillDefaults()
	if len(sequences) == 0 {
		return TrainResult{}, ErrEmptySequence
	}
	for _, obs := range sequences {
		if err := m.checkObs(obs); err != nil {
			return TrainResult{}, err
		}
	}
	n, sym := m.States(), m.Symbols()
	prevLL := math.Inf(-1)
	var res TrainResult
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		// Accumulators for expected counts.
		piAcc := make([]float64, n)
		aNum := makeMatrix(n, n)
		bNum := makeMatrix(n, sym)
		totalLL := 0.0

		for _, obs := range sequences {
			T := len(obs)
			alpha, scale, ll, err := m.Forward(obs)
			if err != nil {
				return res, fmt.Errorf("baum-welch E-step: %w", err)
			}
			totalLL += ll
			beta, err := m.Backward(obs, scale)
			if err != nil {
				return res, fmt.Errorf("baum-welch E-step: %w", err)
			}
			// gamma[t][i] and xi accumulation.
			for t := 0; t < T; t++ {
				gsum := 0.0
				gamma := make([]float64, n)
				for i := 0; i < n; i++ {
					gamma[i] = alpha[t][i] * beta[t][i]
					gsum += gamma[i]
				}
				if gsum <= 0 {
					continue
				}
				for i := 0; i < n; i++ {
					g := gamma[i] / gsum
					if t == 0 {
						piAcc[i] += g
					}
					bNum[i][obs[t]] += g
				}
			}
			// xi[t][i][j] without materializing the 3-D tensor. With the
			// scaled alpha/beta used here, xi = alpha[t][i]*A[i][j]*
			// B[j][obs[t+1]]*beta[t+1][j] already normalized per t.
			for t := 0; t < T-1; t++ {
				for i := 0; i < n; i++ {
					ai := alpha[t][i]
					if ai == 0 {
						continue
					}
					for j := 0; j < n; j++ {
						xi := ai * m.A[i][j] * m.B[j][obs[t+1]] * beta[t+1][j]
						aNum[i][j] += xi
					}
				}
			}
		}

		// M-step with smoothing pseudo-counts.
		for i := 0; i < n; i++ {
			piAcc[i] += cfg.SmoothPi
		}
		normalizeRow(piAcc)
		copy(m.Pi, piAcc)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.A[i][j] = aNum[i][j] + cfg.SmoothA
			}
			normalizeRow(m.A[i])
			if !cfg.FreezeEmissions {
				for k := 0; k < sym; k++ {
					m.B[i][k] = bNum[i][k] + cfg.SmoothB
				}
				normalizeRow(m.B[i])
			}
		}

		res.Iterations = iter + 1
		res.LogLikelihood = totalLL
		if totalLL-prevLL < cfg.Tolerance && iter > 0 {
			res.Converged = true
			break
		}
		prevLL = totalLL
	}
	return res, nil
}
