package hmm

import (
	"fmt"
	"math"

	"github.com/social-sensing/sstd/internal/obs/flightrec"
)

// WarmStartParamTol is the parameter-space convergence threshold used by
// warm-started training: when an EM update moves no probability (or
// Gaussian moment) by more than this, the seeded parameters are already at
// the EM fixed point and training stops after that single iteration.
const WarmStartParamTol = 1e-9

// TrainConfig controls Baum-Welch training.
type TrainConfig struct {
	// MaxIterations bounds EM iterations. Default 100.
	MaxIterations int
	// Tolerance stops training when the log-likelihood improvement per
	// iteration drops below it. Default 1e-6.
	Tolerance float64
	// SmoothA, SmoothB and SmoothPi are pseudo-counts added to the
	// re-estimated transition, emission and initial distributions to keep
	// every probability strictly positive (important for short, sparse
	// social sensing sequences). Defaults 1e-3.
	SmoothA, SmoothB, SmoothPi float64
	// FreezeEmissions skips the emission (B) re-estimation, fitting only
	// the transition matrix and initial distribution. With informative
	// emission priors and a single short training sequence per claim,
	// full EM can drift the state semantics; freezing B keeps the states
	// anchored while still learning the truth dynamics.
	FreezeEmissions bool
	// WarmStart declares that the model's current parameters are a
	// previous fit of (a prefix of) the same data rather than a cold
	// init. Training then additionally converges in parameter space:
	// when an iteration's M-step moves no parameter by more than
	// WarmStartParamTol the seeded model is already at the EM fixed point
	// and training stops after that iteration, instead of paying the
	// two-iteration minimum the log-likelihood criterion needs. The
	// numeric updates are unchanged — a warm run on fresh data follows
	// exactly the same EM trajectory it would cold from those parameters.
	WarmStart bool
}

// DefaultTrainConfig returns the default training settings.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		MaxIterations: 100,
		Tolerance:     1e-6,
		SmoothA:       1e-3,
		SmoothB:       1e-3,
		SmoothPi:      1e-3,
	}
}

func (c *TrainConfig) fillDefaults() {
	if c.MaxIterations <= 0 {
		c.MaxIterations = 100
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-6
	}
}

// TrainResult reports how training went.
type TrainResult struct {
	Iterations    int
	LogLikelihood float64
	Converged     bool
	// WarmStarted records that this fit ran with TrainConfig.WarmStart
	// from pre-seeded parameters.
	WarmStarted bool
}

// BaumWelch fits the model in place to one or more observation sequences by
// expectation maximization (the paper's Eq. 5, solved with the classic
// Baum 1970 procedure), returning the final log-likelihood. Multiple
// sequences are combined by accumulating expected counts across sequences.
func (m *Discrete) BaumWelch(sequences [][]int, cfg TrainConfig) (TrainResult, error) {
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	return m.BaumWelchWS(ws, sequences, cfg)
}

// BaumWelchWS is BaumWelch running entirely on ws's flat buffers: the
// E-step lattices, the expected-count accumulators and the flattened
// parameter copies are all reused, so steady state performs zero heap
// allocations. ws must not be shared with concurrent kernel calls.
func (m *Discrete) BaumWelchWS(ws *Workspace, sequences [][]int, cfg TrainConfig) (TrainResult, error) {
	cfg.fillDefaults()
	if len(sequences) == 0 {
		return TrainResult{}, ErrEmptySequence
	}
	for _, obs := range sequences {
		if err := m.checkObs(obs); err != nil {
			return TrainResult{}, err
		}
	}
	n, sym := m.States(), m.Symbols()
	ws.piAcc = growF(ws.piAcc, n)
	ws.aNum = growF(ws.aNum, n*n)
	ws.bNum = growF(ws.bNum, n*sym)
	ws.gamma = growF(ws.gamma, n)
	ws.row = growF(ws.row, max(n, sym))
	prevLL := math.Inf(-1)
	res := TrainResult{WarmStarted: cfg.WarmStart}
	fr, frParent := ws.ring(), ws.frParent
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		piAcc, aNum, bNum, gamma := ws.piAcc, ws.aNum, ws.bNum, ws.gamma
		zeroF(piAcc)
		zeroF(aNum)
		zeroF(bNum)
		ws.loadDiscrete(m)
		totalLL := 0.0

		// Flight-recorder phase probes chain one timestamp through the
		// iteration: forward/backward/E-step per sequence, then the
		// M-step, each tagged with the iteration number.
		tp := fr.Start()
		for _, obs := range sequences {
			T := len(obs)
			ll, err := m.forwardWS(ws, obs)
			if err != nil {
				return res, fmt.Errorf("baum-welch E-step: %w", err)
			}
			tp = fr.Probe(flightrec.ProbeHMMForward, tp, int64(iter), frParent)
			totalLL += ll
			m.backwardWS(ws, obs, ws.scale)
			tp = fr.Probe(flightrec.ProbeHMMBackward, tp, int64(iter), frParent)
			a, b, alpha, beta := ws.a, ws.b, ws.alpha, ws.beta
			if n == 2 {
				// Unrolled 2-state E-step: per-step posteriors go straight
				// to the accumulators and the four xi sums live in
				// registers until the sequence is done.
				a00, a01, a10, a11 := a[0], a[1], a[2], a[3]
				var x00, x01, x10, x11 float64
				for t := 0; t < T; t++ {
					al0, al1 := alpha[t*2], alpha[t*2+1]
					g0 := al0 * beta[t*2]
					g1 := al1 * beta[t*2+1]
					if gsum := g0 + g1; gsum > 0 {
						ginv := 1 / gsum
						g0 *= ginv
						g1 *= ginv
						ot := obs[t]
						if t == 0 {
							piAcc[0] += g0
							piAcc[1] += g1
						}
						bNum[ot] += g0
						bNum[sym+ot] += g1
					}
					if t < T-1 {
						on := obs[t+1]
						e0 := b[on] * beta[(t+1)*2]
						e1 := b[sym+on] * beta[(t+1)*2+1]
						x00 += al0 * a00 * e0
						x01 += al0 * a01 * e1
						x10 += al1 * a10 * e0
						x11 += al1 * a11 * e1
					}
				}
				aNum[0] += x00
				aNum[1] += x01
				aNum[2] += x10
				aNum[3] += x11
				tp = fr.Probe(flightrec.ProbeHMMEStep, tp, int64(iter), frParent)
				continue
			}
			// gamma[t][i] and xi accumulation.
			for t := 0; t < T; t++ {
				gsum := 0.0
				for i := 0; i < n; i++ {
					g := alpha[t*n+i] * beta[t*n+i]
					gamma[i] = g
					gsum += g
				}
				if gsum <= 0 {
					continue
				}
				ginv := 1 / gsum
				ot := obs[t]
				for i := 0; i < n; i++ {
					g := gamma[i] * ginv
					if t == 0 {
						piAcc[i] += g
					}
					bNum[i*sym+ot] += g
				}
			}
			// xi[t][i][j] without materializing the 3-D tensor. With the
			// scaled alpha/beta used here, xi = alpha[t][i]*A[i][j]*
			// B[j][obs[t+1]]*beta[t+1][j] already normalized per t. The
			// emission-weighted betas are shared across source states;
			// stage them in ws.row once per step.
			en := ws.row[:n]
			for t := 0; t < T-1; t++ {
				on := obs[t+1]
				next := beta[(t+1)*n : (t+2)*n]
				for j := 0; j < n; j++ {
					en[j] = b[j*sym+on] * next[j]
				}
				for i := 0; i < n; i++ {
					ai := alpha[t*n+i]
					if ai == 0 {
						continue
					}
					for j := 0; j < n; j++ {
						aNum[i*n+j] += ai * a[i*n+j] * en[j]
					}
				}
			}
			tp = fr.Probe(flightrec.ProbeHMMEStep, tp, int64(iter), frParent)
		}

		// M-step with smoothing pseudo-counts. Under WarmStart, track the
		// largest parameter movement for the fixed-point early stop.
		maxDelta := 0.0
		for i := 0; i < n; i++ {
			piAcc[i] += cfg.SmoothPi
		}
		normalizeRow(piAcc)
		if cfg.WarmStart {
			for i := 0; i < n; i++ {
				maxDelta = math.Max(maxDelta, math.Abs(piAcc[i]-m.Pi[i]))
			}
		}
		copy(m.Pi, piAcc)
		for i := 0; i < n; i++ {
			rowA := m.A[i]
			if cfg.WarmStart {
				copy(ws.row[:n], rowA)
			}
			for j := 0; j < n; j++ {
				rowA[j] = aNum[i*n+j] + cfg.SmoothA
			}
			normalizeRow(rowA)
			if cfg.WarmStart {
				for j := 0; j < n; j++ {
					maxDelta = math.Max(maxDelta, math.Abs(rowA[j]-ws.row[j]))
				}
			}
			if !cfg.FreezeEmissions {
				rowB := m.B[i]
				if cfg.WarmStart {
					copy(ws.row[:sym], rowB)
				}
				for k := 0; k < sym; k++ {
					rowB[k] = bNum[i*sym+k] + cfg.SmoothB
				}
				normalizeRow(rowB)
				if cfg.WarmStart {
					for k := 0; k < sym; k++ {
						maxDelta = math.Max(maxDelta, math.Abs(rowB[k]-ws.row[k]))
					}
				}
			}
		}

		fr.Probe(flightrec.ProbeHMMMStep, tp, int64(iter), frParent)
		res.Iterations = iter + 1
		res.LogLikelihood = totalLL
		if totalLL-prevLL < cfg.Tolerance && iter > 0 {
			res.Converged = true
			break
		}
		if cfg.WarmStart && maxDelta < WarmStartParamTol {
			res.Converged = true
			break
		}
		prevLL = totalLL
	}
	return res, nil
}
