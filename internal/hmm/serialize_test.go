package hmm

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func TestDiscreteJSONRoundTrip(t *testing.T) {
	orig := twoStateModel()
	raw, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var restored Discrete
	if err := json.Unmarshal(raw, &restored); err != nil {
		t.Fatal(err)
	}
	// Identical likelihoods on a probe sequence prove parameter
	// equality.
	rng := rand.New(rand.NewSource(1))
	obs, _ := sample(orig, 60, rng)
	l1, err := orig.LogLikelihood(obs)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := restored.LogLikelihood(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l1-l2) > 1e-12 {
		t.Errorf("likelihood drifted through serialization: %v vs %v", l1, l2)
	}
}

func TestDiscreteUnmarshalRejectsInvalid(t *testing.T) {
	cases := []string{
		`{`,
		`{"transitions":[[0.5,0.5]],"emissions":[[1,0]],"initial":[0.9]}`,                  // pi not a distribution
		`{"transitions":[[2,-1],[0.5,0.5]],"emissions":[[1,0],[0,1]],"initial":[0.5,0.5]}`, // negative prob
	}
	for i, raw := range cases {
		var m Discrete
		if err := json.Unmarshal([]byte(raw), &m); err == nil {
			t.Errorf("case %d accepted invalid payload", i)
		}
	}
}

func TestGaussianJSONRoundTrip(t *testing.T) {
	orig := gaussRef()
	orig.VarFloor = 1e-3
	raw, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var restored Gaussian
	if err := json.Unmarshal(raw, &restored); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	obs, _ := sampleGauss(orig, 50, rng)
	path1, s1, err := orig.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	path2, s2, err := restored.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s1-s2) > 1e-9 {
		t.Errorf("viterbi score drifted: %v vs %v", s1, s2)
	}
	for i := range path1 {
		if path1[i] != path2[i] {
			t.Fatalf("path differs at %d", i)
		}
	}
	if restored.VarFloor != 1e-3 {
		t.Errorf("VarFloor lost: %v", restored.VarFloor)
	}
}

func TestGaussianUnmarshalRejectsInvalid(t *testing.T) {
	cases := []string{
		`{`,
		`{"transitions":[[1]],"initial":[1],"means":[0],"variances":[0]}`,                       // zero variance
		`{"transitions":[[1]],"initial":[1],"means":[0,1],"variances":[1]}`,                     // dim mismatch
		`{"transitions":[[0.5,0.5],[1,0]],"initial":[0.7,0.7],"means":[0,1],"variances":[1,1]}`, // bad pi
	}
	for i, raw := range cases {
		var m Gaussian
		if err := json.Unmarshal([]byte(raw), &m); err == nil {
			t.Errorf("case %d accepted invalid payload", i)
		}
	}
}

func TestTrainedModelSurvivesRoundTrip(t *testing.T) {
	// Offline-train, serialize, restore, decode: the paper's deployment
	// path.
	truth := twoStateModel()
	rng := rand.New(rand.NewSource(9))
	obs, _ := sample(truth, 150, rng)
	m, err := NewDiscrete(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	m.B = [][]float64{{0.7, 0.3}, {0.3, 0.7}}
	if _, err := m.BaumWelch([][]int{obs}, DefaultTrainConfig()); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var restored Discrete
	if err := json.Unmarshal(raw, &restored); err != nil {
		t.Fatal(err)
	}
	p1, _, err := m.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := restored.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("decoded path differs at %d after round trip", i)
		}
	}
}
