package hmm

import (
	"fmt"
	"math"

	"github.com/social-sensing/sstd/internal/obs/flightrec"
)

// Gaussian is an HMM whose per-state emissions are univariate normal
// distributions. It is used with raw (continuous) Aggregated Contribution
// Score sequences, avoiding the quantization step the discrete model needs.
type Gaussian struct {
	// A[i][j] is the transition probability from state i to state j.
	A [][]float64
	// Pi[i] is the initial state distribution.
	Pi []float64
	// Mean[i] and Var[i] parameterize state i's emission density.
	Mean []float64
	Var  []float64

	// VarFloor is the minimum variance enforced during training to keep
	// densities finite. Zero means use the default (1e-4).
	VarFloor float64
}

// NewGaussian allocates a model with uniform transitions and the given
// initial emission parameters. len(means) defines the state count and must
// equal len(vars).
func NewGaussian(means, vars []float64) (*Gaussian, error) {
	if len(means) == 0 || len(means) != len(vars) {
		return nil, fmt.Errorf("hmm: need matching non-empty means/vars, got %d/%d", len(means), len(vars))
	}
	for i, v := range vars {
		if v <= 0 {
			return nil, fmt.Errorf("hmm: var[%d] = %v must be positive", i, v)
		}
	}
	n := len(means)
	return &Gaussian{
		A:    uniformMatrix(n, n),
		Pi:   uniformVector(n),
		Mean: cloneVector(means),
		Var:  cloneVector(vars),
	}, nil
}

// States returns the number of hidden states.
func (m *Gaussian) States() int { return len(m.Pi) }

// Clone returns a deep copy of the model.
func (m *Gaussian) Clone() *Gaussian {
	return &Gaussian{
		A:        cloneMatrix(m.A),
		Pi:       cloneVector(m.Pi),
		Mean:     cloneVector(m.Mean),
		Var:      cloneVector(m.Var),
		VarFloor: m.VarFloor,
	}
}

func (m *Gaussian) varFloor() float64 {
	if m.VarFloor > 0 {
		return m.VarFloor
	}
	return 1e-4
}

// density returns the emission density of observation x in state i. The
// kernels use the equivalent precomputed form 1/(σ√2π)·exp(-d²/(2σ²))
// from the workspace instead of calling this per observation.
func (m *Gaussian) density(i int, x float64) float64 {
	v := m.Var[i]
	d := x - m.Mean[i]
	return math.Exp(-d*d/(2*v)) / math.Sqrt(2*math.Pi*v)
}

func checkGaussObs(obs []float64) error {
	if len(obs) == 0 {
		return ErrEmptySequence
	}
	return nil
}

// forwardWS is the scaled forward kernel; assumes ws.loadGaussian(m) has
// run. Fills ws.alpha (T*n row-major) and ws.scale.
func (m *Gaussian) forwardWS(ws *Workspace, obs []float64) (float64, error) {
	n, T := m.States(), len(obs)
	ws.alpha = growF(ws.alpha, T*n)
	ws.scale = growF(ws.scale, T)
	a, alpha, scale := ws.a, ws.alpha, ws.scale
	coef, negInv, mean := ws.gCoef, ws.gNegInv, m.Mean
	for i := 0; i < n; i++ {
		d := obs[0] - mean[i]
		alpha[i] = m.Pi[i] * (coef[i] * math.Exp(d*d*negInv[i]))
	}
	scale[0] = normalizeRow(alpha[:n])
	for t := 1; t < T; t++ {
		prev := alpha[(t-1)*n : t*n]
		cur := alpha[t*n : (t+1)*n]
		x := obs[t]
		for j := 0; j < n; j++ {
			sum := 0.0
			for i := 0; i < n; i++ {
				sum += prev[i] * a[i*n+j]
			}
			d := x - mean[j]
			cur[j] = sum * (coef[j] * math.Exp(d*d*negInv[j]))
		}
		scale[t] = normalizeRow(cur)
	}
	logProb := 0.0
	for t := 0; t < T; t++ {
		if scale[t] <= 0 {
			return 0, fmt.Errorf("hmm: zero-density observation at t=%d", t)
		}
		logProb += math.Log(scale[t])
	}
	return logProb, nil
}

// backwardWS is the scaled backward kernel; assumes ws.loadGaussian(m) has
// run. Fills ws.beta (T*n row-major).
func (m *Gaussian) backwardWS(ws *Workspace, obs []float64, scale []float64) {
	n, T := m.States(), len(obs)
	ws.beta = growF(ws.beta, T*n)
	a, beta := ws.a, ws.beta
	coef, negInv, mean := ws.gCoef, ws.gNegInv, m.Mean
	for i := 0; i < n; i++ {
		beta[(T-1)*n+i] = 1 / scale[T-1]
	}
	// Per-step emission densities of obs[t+1] are shared by every i; stage
	// them in ws.gamma to avoid recomputing exp n times per state.
	ws.gamma = growF(ws.gamma, n)
	dens := ws.gamma
	for t := T - 2; t >= 0; t-- {
		next := beta[(t+1)*n : (t+2)*n]
		cur := beta[t*n : (t+1)*n]
		x := obs[t+1]
		for j := 0; j < n; j++ {
			d := x - mean[j]
			dens[j] = coef[j] * math.Exp(d*d*negInv[j])
		}
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += a[i*n+j] * dens[j] * next[j]
			}
			cur[i] = sum / scale[t]
		}
	}
}

// ForwardWS runs the scaled forward kernel on ws and returns views of the
// scaled alpha lattice (T*n row-major) and the scaling coefficients, plus
// the log-likelihood (up to the density normalization inherent to
// continuous HMMs). The slices are backed by ws and valid until the next
// kernel call on it.
func (m *Gaussian) ForwardWS(ws *Workspace, obs []float64) (alpha, scale []float64, logProb float64, err error) {
	if err := checkGaussObs(obs); err != nil {
		return nil, nil, 0, err
	}
	ws.loadGaussian(m)
	lp, err := m.forwardWS(ws, obs)
	if err != nil {
		return nil, nil, 0, err
	}
	return ws.alpha, ws.scale, lp, nil
}

// BackwardWS runs the scaled backward kernel on ws with the forward
// scaling coefficients; the returned beta lattice (T*n row-major) is
// backed by ws and valid until the next kernel call.
func (m *Gaussian) BackwardWS(ws *Workspace, obs []float64, scale []float64) ([]float64, error) {
	if err := checkGaussObs(obs); err != nil {
		return nil, err
	}
	if len(scale) != len(obs) {
		return nil, fmt.Errorf("hmm: scale length %d != T %d", len(scale), len(obs))
	}
	ws.loadGaussian(m)
	m.backwardWS(ws, obs, scale)
	return ws.beta, nil
}

// Forward runs the scaled forward pass; logProb is log P(obs|model) up to
// the density (not probability) normalization inherent to continuous HMMs.
func (m *Gaussian) Forward(obs []float64) (alpha [][]float64, scale []float64, logProb float64, err error) {
	if err := checkGaussObs(obs); err != nil {
		return nil, nil, 0, err
	}
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	ws.loadGaussian(m)
	lp, err := m.forwardWS(ws, obs)
	if err != nil {
		return nil, nil, 0, err
	}
	n, T := m.States(), len(obs)
	return unflatten(ws.alpha, T, n), cloneVector(ws.scale[:T]), lp, nil
}

// Backward runs the scaled backward pass with the forward scaling factors.
func (m *Gaussian) Backward(obs []float64, scale []float64) ([][]float64, error) {
	if err := checkGaussObs(obs); err != nil {
		return nil, err
	}
	n, T := m.States(), len(obs)
	if len(scale) != T {
		return nil, fmt.Errorf("hmm: scale length %d != T %d", len(scale), T)
	}
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	ws.loadGaussian(m)
	m.backwardWS(ws, obs, scale)
	return unflatten(ws.beta, T, n), nil
}

// PosteriorWS computes the flat posterior lattice gamma[t*n+i] =
// P(state_t = i | obs, model) into dst, growing it only when its capacity
// is insufficient, and returns it. Steady state performs zero heap
// allocations.
func (m *Gaussian) PosteriorWS(ws *Workspace, obs []float64, dst []float64) ([]float64, error) {
	if err := checkGaussObs(obs); err != nil {
		return nil, err
	}
	ws.loadGaussian(m)
	if _, err := m.forwardWS(ws, obs); err != nil {
		return nil, err
	}
	m.backwardWS(ws, obs, ws.scale)
	return posteriorWS(ws, dst, len(obs), m.States()), nil
}

// ViterbiWS decodes the most likely state sequence into path (grown only
// when its capacity is insufficient) and returns it with its log score.
// The emission log densities are evaluated directly in log space
// (log coef + d²·(-1/2σ²)), which both avoids exp/log round trips and
// keeps far-tail observations finite.
func (m *Gaussian) ViterbiWS(ws *Workspace, obs []float64, path []int) ([]int, float64, error) {
	if err := checkGaussObs(obs); err != nil {
		return nil, 0, err
	}
	tp := ws.ring().Start()
	n := ws.loadGaussianLogs(m)
	T := len(obs)
	ws.le = growF(ws.le, T*n)
	le, lcoef, negInv, mean := ws.le, ws.gLogCoef, ws.gNegInv, m.Mean
	for t, x := range obs {
		for i := 0; i < n; i++ {
			d := x - mean[i]
			le[t*n+i] = lcoef[i] + d*d*negInv[i]
		}
	}
	path, best := viterbiWS(ws, T, n, path)
	ws.fr.Probe(flightrec.ProbeHMMViterbi, tp, int64(T), ws.frParent)
	return path, best, nil
}

// Viterbi returns the most likely state sequence and its log score.
func (m *Gaussian) Viterbi(obs []float64) ([]int, float64, error) {
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	return m.ViterbiWS(ws, obs, nil)
}

// BaumWelch fits transitions, initial distribution and emission moments to
// the sequences by EM.
func (m *Gaussian) BaumWelch(sequences [][]float64, cfg TrainConfig) (TrainResult, error) {
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	return m.BaumWelchWS(ws, sequences, cfg)
}

// BaumWelchWS is BaumWelch running entirely on ws's flat buffers; steady
// state performs zero heap allocations. ws must not be shared with
// concurrent kernel calls.
func (m *Gaussian) BaumWelchWS(ws *Workspace, sequences [][]float64, cfg TrainConfig) (TrainResult, error) {
	cfg.fillDefaults()
	if len(sequences) == 0 {
		return TrainResult{}, ErrEmptySequence
	}
	for _, obs := range sequences {
		if len(obs) == 0 {
			return TrainResult{}, ErrEmptySequence
		}
	}
	n := m.States()
	ws.piAcc = growF(ws.piAcc, n)
	ws.aNum = growF(ws.aNum, n*n)
	ws.gSum = growF(ws.gSum, n)
	ws.oSum = growF(ws.oSum, n)
	ws.oSq = growF(ws.oSq, n)
	ws.row = growF(ws.row, n)
	prevLL := math.Inf(-1)
	res := TrainResult{WarmStarted: cfg.WarmStart}
	fr, frParent := ws.ring(), ws.frParent
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		piAcc, aNum := ws.piAcc, ws.aNum
		gammaSum, obsSum, obsSqSum := ws.gSum, ws.oSum, ws.oSq
		zeroF(piAcc)
		zeroF(aNum)
		zeroF(gammaSum)
		zeroF(obsSum)
		zeroF(obsSqSum)
		ws.loadGaussian(m)
		totalLL := 0.0

		tp := fr.Start()
		for _, obs := range sequences {
			T := len(obs)
			ll, err := m.forwardWS(ws, obs)
			if err != nil {
				return res, fmt.Errorf("gaussian baum-welch E-step: %w", err)
			}
			tp = fr.Probe(flightrec.ProbeHMMForward, tp, int64(iter), frParent)
			totalLL += ll
			m.backwardWS(ws, obs, ws.scale)
			tp = fr.Probe(flightrec.ProbeHMMBackward, tp, int64(iter), frParent)
			a, alpha, beta := ws.a, ws.alpha, ws.beta
			coef, negInv, mean := ws.gCoef, ws.gNegInv, m.Mean
			for t := 0; t < T; t++ {
				gsum := 0.0
				// Accumulate the per-step posterior over ws.row (n wide).
				gamma := ws.row
				for i := 0; i < n; i++ {
					g := alpha[t*n+i] * beta[t*n+i]
					gamma[i] = g
					gsum += g
				}
				if gsum <= 0 {
					continue
				}
				x := obs[t]
				for i := 0; i < n; i++ {
					g := gamma[i] / gsum
					if t == 0 {
						piAcc[i] += g
					}
					gammaSum[i] += g
					obsSum[i] += g * x
					obsSqSum[i] += g * x * x
				}
			}
			// Stage obs[t+1]'s emission densities once per step (shared by
			// all source states i) in ws.gamma.
			ws.gamma = growF(ws.gamma, n)
			dens := ws.gamma
			for t := 0; t < T-1; t++ {
				x := obs[t+1]
				for j := 0; j < n; j++ {
					d := x - mean[j]
					dens[j] = coef[j] * math.Exp(d*d*negInv[j])
				}
				next := beta[(t+1)*n : (t+2)*n]
				for i := 0; i < n; i++ {
					ai := alpha[t*n+i]
					if ai == 0 {
						continue
					}
					for j := 0; j < n; j++ {
						aNum[i*n+j] += ai * a[i*n+j] * dens[j] * next[j]
					}
				}
			}
			tp = fr.Probe(flightrec.ProbeHMMEStep, tp, int64(iter), frParent)
		}

		maxDelta := 0.0
		for i := 0; i < n; i++ {
			piAcc[i] += cfg.SmoothPi
		}
		normalizeRow(piAcc)
		if cfg.WarmStart {
			for i := 0; i < n; i++ {
				maxDelta = math.Max(maxDelta, math.Abs(piAcc[i]-m.Pi[i]))
			}
		}
		copy(m.Pi, piAcc)
		floor := m.varFloor()
		for i := 0; i < n; i++ {
			rowA := m.A[i]
			if cfg.WarmStart {
				copy(ws.row[:n], rowA)
			}
			for j := 0; j < n; j++ {
				rowA[j] = aNum[i*n+j] + cfg.SmoothA
			}
			normalizeRow(rowA)
			if cfg.WarmStart {
				for j := 0; j < n; j++ {
					maxDelta = math.Max(maxDelta, math.Abs(rowA[j]-ws.row[j]))
				}
			}
			if gammaSum[i] > 0 {
				mean := obsSum[i] / gammaSum[i]
				variance := obsSqSum[i]/gammaSum[i] - mean*mean
				if variance < floor {
					variance = floor
				}
				if cfg.WarmStart {
					maxDelta = math.Max(maxDelta, math.Abs(mean-m.Mean[i]))
					maxDelta = math.Max(maxDelta, math.Abs(variance-m.Var[i]))
				}
				m.Mean[i] = mean
				m.Var[i] = variance
			}
		}
		fr.Probe(flightrec.ProbeHMMMStep, tp, int64(iter), frParent)

		res.Iterations = iter + 1
		res.LogLikelihood = totalLL
		if totalLL-prevLL < cfg.Tolerance && iter > 0 {
			res.Converged = true
			break
		}
		if cfg.WarmStart && maxDelta < WarmStartParamTol {
			res.Converged = true
			break
		}
		prevLL = totalLL
	}
	return res, nil
}
