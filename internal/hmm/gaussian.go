package hmm

import (
	"fmt"
	"math"
)

// Gaussian is an HMM whose per-state emissions are univariate normal
// distributions. It is used with raw (continuous) Aggregated Contribution
// Score sequences, avoiding the quantization step the discrete model needs.
type Gaussian struct {
	// A[i][j] is the transition probability from state i to state j.
	A [][]float64
	// Pi[i] is the initial state distribution.
	Pi []float64
	// Mean[i] and Var[i] parameterize state i's emission density.
	Mean []float64
	Var  []float64

	// VarFloor is the minimum variance enforced during training to keep
	// densities finite. Zero means use the default (1e-4).
	VarFloor float64
}

// NewGaussian allocates a model with uniform transitions and the given
// initial emission parameters. len(means) defines the state count and must
// equal len(vars).
func NewGaussian(means, vars []float64) (*Gaussian, error) {
	if len(means) == 0 || len(means) != len(vars) {
		return nil, fmt.Errorf("hmm: need matching non-empty means/vars, got %d/%d", len(means), len(vars))
	}
	for i, v := range vars {
		if v <= 0 {
			return nil, fmt.Errorf("hmm: var[%d] = %v must be positive", i, v)
		}
	}
	n := len(means)
	return &Gaussian{
		A:    uniformMatrix(n, n),
		Pi:   uniformVector(n),
		Mean: cloneVector(means),
		Var:  cloneVector(vars),
	}, nil
}

// States returns the number of hidden states.
func (m *Gaussian) States() int { return len(m.Pi) }

func (m *Gaussian) varFloor() float64 {
	if m.VarFloor > 0 {
		return m.VarFloor
	}
	return 1e-4
}

// density returns the emission density of observation x in state i.
func (m *Gaussian) density(i int, x float64) float64 {
	v := m.Var[i]
	d := x - m.Mean[i]
	return math.Exp(-d*d/(2*v)) / math.Sqrt(2*math.Pi*v)
}

// Forward runs the scaled forward pass; logProb is log P(obs|model) up to
// the density (not probability) normalization inherent to continuous HMMs.
func (m *Gaussian) Forward(obs []float64) (alpha [][]float64, scale []float64, logProb float64, err error) {
	if len(obs) == 0 {
		return nil, nil, 0, ErrEmptySequence
	}
	n, T := m.States(), len(obs)
	alpha = makeMatrix(T, n)
	scale = make([]float64, T)
	for i := 0; i < n; i++ {
		alpha[0][i] = m.Pi[i] * m.density(i, obs[0])
	}
	scale[0] = normalizeRow(alpha[0])
	for t := 1; t < T; t++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for i := 0; i < n; i++ {
				sum += alpha[t-1][i] * m.A[i][j]
			}
			alpha[t][j] = sum * m.density(j, obs[t])
		}
		scale[t] = normalizeRow(alpha[t])
	}
	for t := 0; t < T; t++ {
		if scale[t] <= 0 {
			return nil, nil, 0, fmt.Errorf("hmm: zero-density observation at t=%d", t)
		}
		logProb += math.Log(scale[t])
	}
	return alpha, scale, logProb, nil
}

// Backward runs the scaled backward pass with the forward scaling factors.
func (m *Gaussian) Backward(obs []float64, scale []float64) ([][]float64, error) {
	if len(obs) == 0 {
		return nil, ErrEmptySequence
	}
	n, T := m.States(), len(obs)
	if len(scale) != T {
		return nil, fmt.Errorf("hmm: scale length %d != T %d", len(scale), T)
	}
	beta := makeMatrix(T, n)
	for i := 0; i < n; i++ {
		beta[T-1][i] = 1 / scale[T-1]
	}
	for t := T - 2; t >= 0; t-- {
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += m.A[i][j] * m.density(j, obs[t+1]) * beta[t+1][j]
			}
			beta[t][i] = sum / scale[t]
		}
	}
	return beta, nil
}

// Viterbi returns the most likely state sequence and its log score.
func (m *Gaussian) Viterbi(obs []float64) ([]int, float64, error) {
	if len(obs) == 0 {
		return nil, 0, ErrEmptySequence
	}
	n, T := m.States(), len(obs)
	delta := makeMatrix(T, n)
	psi := make([][]int, T)
	for t := range psi {
		psi[t] = make([]int, n)
	}
	for i := 0; i < n; i++ {
		delta[0][i] = safeLog(m.Pi[i]) + safeLog(m.density(i, obs[0]))
	}
	for t := 1; t < T; t++ {
		for j := 0; j < n; j++ {
			best := math.Inf(-1)
			arg := 0
			for i := 0; i < n; i++ {
				v := delta[t-1][i] + safeLog(m.A[i][j])
				if v > best {
					best = v
					arg = i
				}
			}
			delta[t][j] = best + safeLog(m.density(j, obs[t]))
			psi[t][j] = arg
		}
	}
	best := math.Inf(-1)
	last := 0
	for i := 0; i < n; i++ {
		if delta[T-1][i] > best {
			best = delta[T-1][i]
			last = i
		}
	}
	path := make([]int, T)
	path[T-1] = last
	for t := T - 1; t > 0; t-- {
		path[t-1] = psi[t][path[t]]
	}
	return path, best, nil
}

// BaumWelch fits transitions, initial distribution and emission moments to
// the sequences by EM.
func (m *Gaussian) BaumWelch(sequences [][]float64, cfg TrainConfig) (TrainResult, error) {
	cfg.fillDefaults()
	if len(sequences) == 0 {
		return TrainResult{}, ErrEmptySequence
	}
	for _, obs := range sequences {
		if len(obs) == 0 {
			return TrainResult{}, ErrEmptySequence
		}
	}
	n := m.States()
	prevLL := math.Inf(-1)
	var res TrainResult
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		piAcc := make([]float64, n)
		aNum := makeMatrix(n, n)
		gammaSum := make([]float64, n)
		obsSum := make([]float64, n)
		obsSqSum := make([]float64, n)
		totalLL := 0.0

		for _, obs := range sequences {
			T := len(obs)
			alpha, scale, ll, err := m.Forward(obs)
			if err != nil {
				return res, fmt.Errorf("gaussian baum-welch E-step: %w", err)
			}
			totalLL += ll
			beta, err := m.Backward(obs, scale)
			if err != nil {
				return res, fmt.Errorf("gaussian baum-welch E-step: %w", err)
			}
			for t := 0; t < T; t++ {
				gsum := 0.0
				gamma := make([]float64, n)
				for i := 0; i < n; i++ {
					gamma[i] = alpha[t][i] * beta[t][i]
					gsum += gamma[i]
				}
				if gsum <= 0 {
					continue
				}
				for i := 0; i < n; i++ {
					g := gamma[i] / gsum
					if t == 0 {
						piAcc[i] += g
					}
					gammaSum[i] += g
					obsSum[i] += g * obs[t]
					obsSqSum[i] += g * obs[t] * obs[t]
				}
			}
			for t := 0; t < T-1; t++ {
				for i := 0; i < n; i++ {
					ai := alpha[t][i]
					if ai == 0 {
						continue
					}
					for j := 0; j < n; j++ {
						aNum[i][j] += ai * m.A[i][j] * m.density(j, obs[t+1]) * beta[t+1][j]
					}
				}
			}
		}

		for i := 0; i < n; i++ {
			piAcc[i] += cfg.SmoothPi
		}
		normalizeRow(piAcc)
		copy(m.Pi, piAcc)
		floor := m.varFloor()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.A[i][j] = aNum[i][j] + cfg.SmoothA
			}
			normalizeRow(m.A[i])
			if gammaSum[i] > 0 {
				mean := obsSum[i] / gammaSum[i]
				variance := obsSqSum[i]/gammaSum[i] - mean*mean
				if variance < floor {
					variance = floor
				}
				m.Mean[i] = mean
				m.Var[i] = variance
			}
		}

		res.Iterations = iter + 1
		res.LogLikelihood = totalLL
		if totalLL-prevLL < cfg.Tolerance && iter > 0 {
			res.Converged = true
			break
		}
		prevLL = totalLL
	}
	return res, nil
}
