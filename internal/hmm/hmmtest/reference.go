// Package hmmtest carries a frozen copy of the repository's original
// (pre-workspace) HMM kernels, verbatim in structure and arithmetic order.
// It exists purely as a test oracle and benchmark baseline: the
// allocation-free flat kernels in internal/hmm are asserted equivalent to
// these within 1e-12, and the checked-in BENCH_hmm.json baseline measures
// the speedup of the rewrite against them on the same machine. Do not
// "improve" this code — its value is that it never changes.
package hmmtest

import (
	"fmt"
	"math"

	"github.com/social-sensing/sstd/internal/hmm"
)

func makeMatrix(rows, cols int) [][]float64 {
	backing := make([]float64, rows*cols)
	m := make([][]float64, rows)
	for i := range m {
		m[i], backing = backing[:cols:cols], backing[cols:]
	}
	return m
}

func normalizeRow(row []float64) float64 {
	sum := 0.0
	for _, v := range row {
		sum += v
	}
	if sum > 0 {
		for i := range row {
			row[i] /= sum
		}
	}
	return sum
}

func safeLog(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return math.Log(x)
}

// Forward is the seed scaled forward algorithm for discrete models.
func Forward(m *hmm.Discrete, obs []int) (alpha [][]float64, scale []float64, logProb float64, err error) {
	n, T := m.States(), len(obs)
	alpha = makeMatrix(T, n)
	scale = make([]float64, T)
	for i := 0; i < n; i++ {
		alpha[0][i] = m.Pi[i] * m.B[i][obs[0]]
	}
	scale[0] = normalizeRow(alpha[0])
	for t := 1; t < T; t++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for i := 0; i < n; i++ {
				sum += alpha[t-1][i] * m.A[i][j]
			}
			alpha[t][j] = sum * m.B[j][obs[t]]
		}
		scale[t] = normalizeRow(alpha[t])
	}
	for t := 0; t < T; t++ {
		if scale[t] <= 0 {
			return nil, nil, 0, fmt.Errorf("hmmtest: zero-probability observation at t=%d", t)
		}
		logProb += math.Log(scale[t])
	}
	return alpha, scale, logProb, nil
}

// Backward is the seed scaled backward algorithm for discrete models.
func Backward(m *hmm.Discrete, obs []int, scale []float64) [][]float64 {
	n, T := m.States(), len(obs)
	beta := makeMatrix(T, n)
	for i := 0; i < n; i++ {
		beta[T-1][i] = 1 / scale[T-1]
	}
	for t := T - 2; t >= 0; t-- {
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += m.A[i][j] * m.B[j][obs[t+1]] * beta[t+1][j]
			}
			beta[t][i] = sum / scale[t]
		}
	}
	return beta
}

// Posterior is the seed forward-backward smoother for discrete models.
func Posterior(m *hmm.Discrete, obs []int) ([][]float64, error) {
	alpha, scale, _, err := Forward(m, obs)
	if err != nil {
		return nil, err
	}
	beta := Backward(m, obs, scale)
	T, n := len(obs), m.States()
	gamma := makeMatrix(T, n)
	for t := 0; t < T; t++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			gamma[t][i] = alpha[t][i] * beta[t][i]
			sum += gamma[t][i]
		}
		if sum > 0 {
			for i := 0; i < n; i++ {
				gamma[t][i] /= sum
			}
		}
	}
	return gamma, nil
}

// Viterbi is the seed Viterbi decoder for discrete models, including its
// per-cell safeLog recomputation.
func Viterbi(m *hmm.Discrete, obs []int) ([]int, float64) {
	n, T := m.States(), len(obs)
	delta := makeMatrix(T, n)
	psi := make([][]int, T)
	for t := range psi {
		psi[t] = make([]int, n)
	}
	for i := 0; i < n; i++ {
		delta[0][i] = safeLog(m.Pi[i]) + safeLog(m.B[i][obs[0]])
	}
	for t := 1; t < T; t++ {
		for j := 0; j < n; j++ {
			best := math.Inf(-1)
			arg := 0
			for i := 0; i < n; i++ {
				v := delta[t-1][i] + safeLog(m.A[i][j])
				if v > best {
					best = v
					arg = i
				}
			}
			delta[t][j] = best + safeLog(m.B[j][obs[t]])
			psi[t][j] = arg
		}
	}
	best := math.Inf(-1)
	last := 0
	for i := 0; i < n; i++ {
		if delta[T-1][i] > best {
			best = delta[T-1][i]
			last = i
		}
	}
	path := make([]int, T)
	path[T-1] = last
	for t := T - 1; t > 0; t-- {
		path[t-1] = psi[t][path[t]]
	}
	return path, best
}

// BaumWelch is the seed discrete EM fit, fresh accumulators and per-step
// gamma allocations included.
func BaumWelch(m *hmm.Discrete, sequences [][]int, cfg hmm.TrainConfig) (hmm.TrainResult, error) {
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 100
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 1e-6
	}
	n, sym := m.States(), m.Symbols()
	prevLL := math.Inf(-1)
	var res hmm.TrainResult
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		piAcc := make([]float64, n)
		aNum := makeMatrix(n, n)
		bNum := makeMatrix(n, sym)
		totalLL := 0.0

		for _, obs := range sequences {
			T := len(obs)
			alpha, scale, ll, err := Forward(m, obs)
			if err != nil {
				return res, fmt.Errorf("baum-welch E-step: %w", err)
			}
			totalLL += ll
			beta := Backward(m, obs, scale)
			for t := 0; t < T; t++ {
				gsum := 0.0
				gamma := make([]float64, n)
				for i := 0; i < n; i++ {
					gamma[i] = alpha[t][i] * beta[t][i]
					gsum += gamma[i]
				}
				if gsum <= 0 {
					continue
				}
				for i := 0; i < n; i++ {
					g := gamma[i] / gsum
					if t == 0 {
						piAcc[i] += g
					}
					bNum[i][obs[t]] += g
				}
			}
			for t := 0; t < T-1; t++ {
				for i := 0; i < n; i++ {
					ai := alpha[t][i]
					if ai == 0 {
						continue
					}
					for j := 0; j < n; j++ {
						xi := ai * m.A[i][j] * m.B[j][obs[t+1]] * beta[t+1][j]
						aNum[i][j] += xi
					}
				}
			}
		}

		for i := 0; i < n; i++ {
			piAcc[i] += cfg.SmoothPi
		}
		normalizeRow(piAcc)
		copy(m.Pi, piAcc)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.A[i][j] = aNum[i][j] + cfg.SmoothA
			}
			normalizeRow(m.A[i])
			if !cfg.FreezeEmissions {
				for k := 0; k < sym; k++ {
					m.B[i][k] = bNum[i][k] + cfg.SmoothB
				}
				normalizeRow(m.B[i])
			}
		}

		res.Iterations = iter + 1
		res.LogLikelihood = totalLL
		if totalLL-prevLL < cfg.Tolerance && iter > 0 {
			res.Converged = true
			break
		}
		prevLL = totalLL
	}
	return res, nil
}

func gaussDensity(m *hmm.Gaussian, i int, x float64) float64 {
	v := m.Var[i]
	d := x - m.Mean[i]
	return math.Exp(-d*d/(2*v)) / math.Sqrt(2*math.Pi*v)
}

// GaussForward is the seed scaled forward pass for Gaussian models.
func GaussForward(m *hmm.Gaussian, obs []float64) (alpha [][]float64, scale []float64, logProb float64, err error) {
	n, T := m.States(), len(obs)
	alpha = makeMatrix(T, n)
	scale = make([]float64, T)
	for i := 0; i < n; i++ {
		alpha[0][i] = m.Pi[i] * gaussDensity(m, i, obs[0])
	}
	scale[0] = normalizeRow(alpha[0])
	for t := 1; t < T; t++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for i := 0; i < n; i++ {
				sum += alpha[t-1][i] * m.A[i][j]
			}
			alpha[t][j] = sum * gaussDensity(m, j, obs[t])
		}
		scale[t] = normalizeRow(alpha[t])
	}
	for t := 0; t < T; t++ {
		if scale[t] <= 0 {
			return nil, nil, 0, fmt.Errorf("hmmtest: zero-density observation at t=%d", t)
		}
		logProb += math.Log(scale[t])
	}
	return alpha, scale, logProb, nil
}

// GaussBackward is the seed scaled backward pass for Gaussian models.
func GaussBackward(m *hmm.Gaussian, obs []float64, scale []float64) [][]float64 {
	n, T := m.States(), len(obs)
	beta := makeMatrix(T, n)
	for i := 0; i < n; i++ {
		beta[T-1][i] = 1 / scale[T-1]
	}
	for t := T - 2; t >= 0; t-- {
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += m.A[i][j] * gaussDensity(m, j, obs[t+1]) * beta[t+1][j]
			}
			beta[t][i] = sum / scale[t]
		}
	}
	return beta
}

// GaussViterbi is the seed Viterbi decoder for Gaussian models.
func GaussViterbi(m *hmm.Gaussian, obs []float64) ([]int, float64) {
	n, T := m.States(), len(obs)
	delta := makeMatrix(T, n)
	psi := make([][]int, T)
	for t := range psi {
		psi[t] = make([]int, n)
	}
	for i := 0; i < n; i++ {
		delta[0][i] = safeLog(m.Pi[i]) + safeLog(gaussDensity(m, i, obs[0]))
	}
	for t := 1; t < T; t++ {
		for j := 0; j < n; j++ {
			best := math.Inf(-1)
			arg := 0
			for i := 0; i < n; i++ {
				v := delta[t-1][i] + safeLog(m.A[i][j])
				if v > best {
					best = v
					arg = i
				}
			}
			delta[t][j] = best + safeLog(gaussDensity(m, j, obs[t]))
			psi[t][j] = arg
		}
	}
	best := math.Inf(-1)
	last := 0
	for i := 0; i < n; i++ {
		if delta[T-1][i] > best {
			best = delta[T-1][i]
			last = i
		}
	}
	path := make([]int, T)
	path[T-1] = last
	for t := T - 1; t > 0; t-- {
		path[t-1] = psi[t][path[t]]
	}
	return path, best
}

// GaussBaumWelch is the seed Gaussian EM fit.
func GaussBaumWelch(m *hmm.Gaussian, sequences [][]float64, cfg hmm.TrainConfig) (hmm.TrainResult, error) {
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 100
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 1e-6
	}
	n := m.States()
	floorVal := m.VarFloor
	if floorVal <= 0 {
		floorVal = 1e-4
	}
	prevLL := math.Inf(-1)
	var res hmm.TrainResult
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		piAcc := make([]float64, n)
		aNum := makeMatrix(n, n)
		gammaSum := make([]float64, n)
		obsSum := make([]float64, n)
		obsSqSum := make([]float64, n)
		totalLL := 0.0

		for _, obs := range sequences {
			T := len(obs)
			alpha, scale, ll, err := GaussForward(m, obs)
			if err != nil {
				return res, fmt.Errorf("gaussian baum-welch E-step: %w", err)
			}
			totalLL += ll
			beta := GaussBackward(m, obs, scale)
			for t := 0; t < T; t++ {
				gsum := 0.0
				gamma := make([]float64, n)
				for i := 0; i < n; i++ {
					gamma[i] = alpha[t][i] * beta[t][i]
					gsum += gamma[i]
				}
				if gsum <= 0 {
					continue
				}
				for i := 0; i < n; i++ {
					g := gamma[i] / gsum
					if t == 0 {
						piAcc[i] += g
					}
					gammaSum[i] += g
					obsSum[i] += g * obs[t]
					obsSqSum[i] += g * obs[t] * obs[t]
				}
			}
			for t := 0; t < T-1; t++ {
				for i := 0; i < n; i++ {
					ai := alpha[t][i]
					if ai == 0 {
						continue
					}
					for j := 0; j < n; j++ {
						aNum[i][j] += ai * m.A[i][j] * gaussDensity(m, j, obs[t+1]) * beta[t+1][j]
					}
				}
			}
		}

		for i := 0; i < n; i++ {
			piAcc[i] += cfg.SmoothPi
		}
		normalizeRow(piAcc)
		copy(m.Pi, piAcc)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.A[i][j] = aNum[i][j] + cfg.SmoothA
			}
			normalizeRow(m.A[i])
			if gammaSum[i] > 0 {
				mean := obsSum[i] / gammaSum[i]
				variance := obsSqSum[i]/gammaSum[i] - mean*mean
				if variance < floorVal {
					variance = floorVal
				}
				m.Mean[i] = mean
				m.Var[i] = variance
			}
		}

		res.Iterations = iter + 1
		res.LogLikelihood = totalLL
		if totalLL-prevLL < cfg.Tolerance && iter > 0 {
			res.Converged = true
			break
		}
		prevLL = totalLL
	}
	return res, nil
}
