package hmm

import (
	"math"
	"math/rand"
	"testing"
)

// randDiscrete builds a random strictly-positive model (every row a
// proper distribution) from a seeded rng.
func randDiscrete(rng *rand.Rand, states, symbols int) *Discrete {
	m, _ := NewDiscrete(states, symbols)
	fill := func(row []float64) {
		for i := range row {
			row[i] = rng.Float64() + 0.05
		}
		normalizeRow(row)
	}
	fill(m.Pi)
	for i := range m.A {
		fill(m.A[i])
		fill(m.B[i])
	}
	return m
}

func randObs(rng *rand.Rand, symbols, T int) []int {
	obs := make([]int, T)
	for t := range obs {
		obs[t] = rng.Intn(symbols)
	}
	return obs
}

// pathLogProb scores a specific hidden-state path jointly with obs:
// log Pi[p0] + log B[p0][o0] + sum_t (log A[p(t-1)][pt] + log B[pt][ot]).
func pathLogProb(m *Discrete, path, obs []int) float64 {
	lp := safeLog(m.Pi[path[0]]) + safeLog(m.B[path[0]][obs[0]])
	for t := 1; t < len(obs); t++ {
		lp += safeLog(m.A[path[t-1]][path[t]]) + safeLog(m.B[path[t]][obs[t]])
	}
	return lp
}

// TestViterbiDominatesSampledPaths: the Viterbi path's log probability
// must be >= that of any other hidden-state path. Checked against paths
// sampled from the model's own dynamics (likely contenders) and
// uniformly random paths (adversarial shapes), across many seeds.
func TestViterbiDominatesSampledPaths(t *testing.T) {
	const eps = 1e-9
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		states := 2 + rng.Intn(3)  // 2..4
		symbols := 2 + rng.Intn(3) // 2..4
		T := 5 + rng.Intn(30)
		m := randDiscrete(rng, states, symbols)
		obs := randObs(rng, symbols, T)

		path, score, err := m.Viterbi(obs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := pathLogProb(m, path, obs); math.Abs(got-score) > eps {
			t.Fatalf("seed %d: viterbi score %g disagrees with its own path's probability %g", seed, score, got)
		}
		for trial := 0; trial < 200; trial++ {
			cand := make([]int, T)
			if trial%2 == 0 {
				// Sample from the model's dynamics.
				cand[0] = sampleIndex(rng, m.Pi)
				for u := 1; u < T; u++ {
					cand[u] = sampleIndex(rng, m.A[cand[u-1]])
				}
			} else {
				for u := range cand {
					cand[u] = rng.Intn(states)
				}
			}
			if lp := pathLogProb(m, cand, obs); lp > score+eps {
				t.Fatalf("seed %d trial %d: sampled path beats viterbi (%g > %g)", seed, trial, lp, score)
			}
		}
	}
}

// TestViterbiMatchesExhaustiveSearch enumerates every possible path on
// tiny instances and checks Viterbi finds the true maximum exactly.
func TestViterbiMatchesExhaustiveSearch(t *testing.T) {
	const eps = 1e-9
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		const states, symbols, T = 3, 2, 5
		m := randDiscrete(rng, states, symbols)
		obs := randObs(rng, symbols, T)
		_, score, err := m.Viterbi(obs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		best := math.Inf(-1)
		path := make([]int, T)
		var walk func(t int)
		walk = func(pos int) {
			if pos == T {
				if lp := pathLogProb(m, path, obs); lp > best {
					best = lp
				}
				return
			}
			for s := 0; s < states; s++ {
				path[pos] = s
				walk(pos + 1)
			}
		}
		walk(0)
		if math.Abs(best-score) > eps {
			t.Fatalf("seed %d: viterbi %g != exhaustive max %g", seed, score, best)
		}
	}
}

// TestBaumWelchMonotoneLogLikelihood: with smoothing off (pure EM), the
// training log-likelihood may never decrease from one iteration to the
// next — the textbook EM guarantee. Each single-iteration call reports
// the LL of the model as it stood at the start of that iteration, so
// consecutive calls expose the full LL trajectory.
func TestBaumWelchMonotoneLogLikelihood(t *testing.T) {
	const eps = 1e-9
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed + 200))
		states := 2 + rng.Intn(2)
		symbols := 2 + rng.Intn(2)
		m := randDiscrete(rng, states, symbols)
		seqs := [][]int{
			randObs(rng, symbols, 30),
			randObs(rng, symbols, 20),
		}
		cfg := TrainConfig{MaxIterations: 1} // Smooth* zero: pure EM
		prev := math.Inf(-1)
		for iter := 0; iter < 30; iter++ {
			res, err := m.BaumWelch(seqs, cfg)
			if err != nil {
				t.Fatalf("seed %d iter %d: %v", seed, iter, err)
			}
			if res.LogLikelihood < prev-eps {
				t.Fatalf("seed %d iter %d: log-likelihood decreased %g -> %g",
					seed, iter, prev, res.LogLikelihood)
			}
			prev = res.LogLikelihood
		}
	}
}

// TestBaumWelchRowsStayStochastic: after every single update — smoothed,
// unsmoothed, and with frozen emissions — Pi and every row of A and B
// must still sum to 1.
func TestBaumWelchRowsStayStochastic(t *testing.T) {
	const eps = 1e-9
	configs := map[string]TrainConfig{
		"smoothed": {MaxIterations: 1, SmoothA: 1e-3, SmoothB: 1e-3, SmoothPi: 1e-3},
		"pure-em":  {MaxIterations: 1},
		"frozen-b": {MaxIterations: 1, SmoothA: 1e-3, SmoothPi: 1e-3, FreezeEmissions: true},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(300))
			m := randDiscrete(rng, 3, 3)
			seqs := [][]int{randObs(rng, 3, 40)}
			for iter := 0; iter < 15; iter++ {
				if _, err := m.BaumWelch(seqs, cfg); err != nil {
					t.Fatalf("iter %d: %v", iter, err)
				}
				if err := m.Validate(); err != nil {
					t.Fatalf("iter %d: model invalid after update: %v", iter, err)
				}
				checkRowSum(t, iter, "pi", m.Pi, eps)
				for i := range m.A {
					checkRowSum(t, iter, "A", m.A[i], eps)
					checkRowSum(t, iter, "B", m.B[i], eps)
				}
			}
		})
	}
}

func checkRowSum(t *testing.T, iter int, name string, row []float64, eps float64) {
	t.Helper()
	sum := 0.0
	for _, v := range row {
		sum += v
	}
	if math.Abs(sum-1) > eps {
		t.Fatalf("iter %d: %s row sums to %.12f, want 1", iter, name, sum)
	}
}

// sampleIndex draws an index from a probability row.
func sampleIndex(rng *rand.Rand, dist []float64) int {
	u := rng.Float64()
	acc := 0.0
	for i, p := range dist {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(dist) - 1
}
