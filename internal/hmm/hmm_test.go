package hmm

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// twoStateModel is a well-conditioned reference model used across tests:
// state 0 mostly emits symbol 0, state 1 mostly emits symbol 1, and states
// are sticky.
func twoStateModel() *Discrete {
	return &Discrete{
		A:  [][]float64{{0.9, 0.1}, {0.2, 0.8}},
		B:  [][]float64{{0.85, 0.15}, {0.1, 0.9}},
		Pi: []float64{0.6, 0.4},
	}
}

// sample draws an observation sequence (and its hidden path) from m.
func sample(m *Discrete, T int, rng *rand.Rand) (obs, states []int) {
	obs = make([]int, T)
	states = make([]int, T)
	st := drawFrom(m.Pi, rng)
	for t := 0; t < T; t++ {
		states[t] = st
		obs[t] = drawFrom(m.B[st], rng)
		st = drawFrom(m.A[st], rng)
	}
	return obs, states
}

func drawFrom(dist []float64, rng *rand.Rand) int {
	r := rng.Float64()
	acc := 0.0
	for i, p := range dist {
		acc += p
		if r < acc {
			return i
		}
	}
	return len(dist) - 1
}

func TestNewDiscreteUniform(t *testing.T) {
	m, err := NewDiscrete(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.States() != 3 || m.Symbols() != 4 {
		t.Fatalf("dims = %d states, %d symbols", m.States(), m.Symbols())
	}
	if err := m.Validate(); err != nil {
		t.Errorf("uniform model invalid: %v", err)
	}
	if _, err := NewDiscrete(0, 2); err == nil {
		t.Error("NewDiscrete(0,2) accepted")
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Discrete)
	}{
		{"negative prob", func(m *Discrete) { m.A[0][0] = -0.5; m.A[0][1] = 1.5 }},
		{"row not summing", func(m *Discrete) { m.B[1][0] = 0.5 }},
		{"pi not summing", func(m *Discrete) { m.Pi[0] = 0.9 }},
		{"nan", func(m *Discrete) { m.A[0][0] = math.NaN() }},
		{"missing row entries", func(m *Discrete) { m.A[0] = m.A[0][:1] }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := twoStateModel()
			tt.mutate(m)
			if err := m.Validate(); err == nil {
				t.Error("Validate accepted a broken model")
			}
		})
	}
}

func TestForwardLikelihoodMatchesBruteForce(t *testing.T) {
	m := twoStateModel()
	obs := []int{0, 1, 1, 0, 1}
	_, _, got, err := m.Forward(obs)
	if err != nil {
		t.Fatal(err)
	}
	// Brute-force P(obs) by summing over all 2^5 hidden paths.
	n, T := m.States(), len(obs)
	total := 0.0
	paths := 1
	for i := 0; i < T; i++ {
		paths *= n
	}
	for p := 0; p < paths; p++ {
		states := make([]int, T)
		x := p
		for t := 0; t < T; t++ {
			states[t] = x % n
			x /= n
		}
		prob := m.Pi[states[0]] * m.B[states[0]][obs[0]]
		for t := 1; t < T; t++ {
			prob *= m.A[states[t-1]][states[t]] * m.B[states[t]][obs[t]]
		}
		total += prob
	}
	if math.Abs(got-math.Log(total)) > 1e-9 {
		t.Errorf("Forward logP = %v, brute force = %v", got, math.Log(total))
	}
}

func TestForwardBackwardConsistency(t *testing.T) {
	// With Rabiner scaling, sum_i alpha[t][i]*beta[t][i] = 1/scale[t]
	// for every t.
	m := twoStateModel()
	rng := rand.New(rand.NewSource(7))
	obs, _ := sample(m, 50, rng)
	alpha, scale, _, err := m.Forward(obs)
	if err != nil {
		t.Fatal(err)
	}
	beta, err := m.Backward(obs, scale)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < len(obs); tt++ {
		sum := 0.0
		for i := range alpha[tt] {
			sum += alpha[tt][i] * beta[tt][i]
		}
		want := 1 / scale[tt]
		if math.Abs(sum-want) > 1e-9*math.Abs(want) {
			t.Fatalf("alpha·beta at t=%d is %v, want 1/scale = %v", tt, sum, want)
		}
	}
}

func TestPosteriorRowsSumToOne(t *testing.T) {
	m := twoStateModel()
	rng := rand.New(rand.NewSource(11))
	obs, _ := sample(m, 80, rng)
	gamma, err := m.Posterior(obs)
	if err != nil {
		t.Fatal(err)
	}
	for tt, row := range gamma {
		sum := 0.0
		for _, v := range row {
			sum += v
			if v < 0 || v > 1+1e-12 {
				t.Fatalf("gamma[%d] = %v out of [0,1]", tt, v)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("gamma[%d] sums to %v", tt, sum)
		}
	}
}

func TestViterbiRecoversPlantedPath(t *testing.T) {
	// With near-deterministic emissions, Viterbi must recover the true
	// hidden path.
	m := &Discrete{
		A:  [][]float64{{0.95, 0.05}, {0.05, 0.95}},
		B:  [][]float64{{0.99, 0.01}, {0.01, 0.99}},
		Pi: []float64{0.5, 0.5},
	}
	rng := rand.New(rand.NewSource(3))
	obs, states := sample(m, 200, rng)
	path, _, err := m.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for i := range path {
		if path[i] != states[i] {
			wrong++
		}
	}
	if wrong > 6 { // 3% slack for genuinely ambiguous steps
		t.Errorf("Viterbi mismatched %d/%d positions", wrong, len(path))
	}
}

func TestViterbiPathScoreIsAchievable(t *testing.T) {
	// The reported log score must equal the joint log prob of the
	// returned path.
	m := twoStateModel()
	rng := rand.New(rand.NewSource(5))
	obs, _ := sample(m, 40, rng)
	path, score, err := m.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	lp := math.Log(m.Pi[path[0]]) + math.Log(m.B[path[0]][obs[0]])
	for t2 := 1; t2 < len(obs); t2++ {
		lp += math.Log(m.A[path[t2-1]][path[t2]]) + math.Log(m.B[path[t2]][obs[t2]])
	}
	if math.Abs(lp-score) > 1e-9 {
		t.Errorf("Viterbi score %v != path log-prob %v", score, lp)
	}
}

func TestViterbiBeatsRandomPaths(t *testing.T) {
	m := twoStateModel()
	rng := rand.New(rand.NewSource(9))
	obs, _ := sample(m, 20, rng)
	_, best, err := m.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		path := make([]int, len(obs))
		for i := range path {
			path[i] = rng.Intn(2)
		}
		lp := safeLog(m.Pi[path[0]]) + safeLog(m.B[path[0]][obs[0]])
		for t2 := 1; t2 < len(obs); t2++ {
			lp += safeLog(m.A[path[t2-1]][path[t2]]) + safeLog(m.B[path[t2]][obs[t2]])
		}
		if lp > best+1e-9 {
			t.Fatalf("random path %v beats Viterbi: %v > %v", path, lp, best)
		}
	}
}

func TestBaumWelchImprovesLikelihood(t *testing.T) {
	truth := twoStateModel()
	rng := rand.New(rand.NewSource(21))
	var seqs [][]int
	for i := 0; i < 5; i++ {
		obs, _ := sample(truth, 100, rng)
		seqs = append(seqs, obs)
	}
	m, err := NewDiscrete(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Break symmetry slightly so EM can move.
	m.B = [][]float64{{0.6, 0.4}, {0.4, 0.6}}
	before := 0.0
	for _, s := range seqs {
		ll, err := m.LogLikelihood(s)
		if err != nil {
			t.Fatal(err)
		}
		before += ll
	}
	res, err := m.BaumWelch(seqs, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.LogLikelihood <= before {
		t.Errorf("training did not improve LL: %v -> %v", before, res.LogLikelihood)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("trained model invalid: %v", err)
	}
	if !res.Converged && res.Iterations < 100 {
		t.Errorf("stopped after %d iters without convergence", res.Iterations)
	}
}

func TestBaumWelchMonotoneLikelihood(t *testing.T) {
	// EM guarantees non-decreasing likelihood; verify across manual
	// single iterations.
	truth := twoStateModel()
	rng := rand.New(rand.NewSource(2))
	obs, _ := sample(truth, 150, rng)
	m, _ := NewDiscrete(2, 2)
	m.B = [][]float64{{0.7, 0.3}, {0.3, 0.7}}
	cfg := DefaultTrainConfig()
	cfg.MaxIterations = 1
	cfg.SmoothA, cfg.SmoothB, cfg.SmoothPi = 0, 0, 0
	prev := math.Inf(-1)
	for i := 0; i < 15; i++ {
		res, err := m.BaumWelch([][]int{obs}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.LogLikelihood < prev-1e-8 {
			t.Fatalf("iteration %d decreased LL: %v -> %v", i, prev, res.LogLikelihood)
		}
		prev = res.LogLikelihood
	}
}

func TestBaumWelchRecoversEmissionStructure(t *testing.T) {
	truth := &Discrete{
		A:  [][]float64{{0.9, 0.1}, {0.1, 0.9}},
		B:  [][]float64{{0.95, 0.05}, {0.05, 0.95}},
		Pi: []float64{0.5, 0.5},
	}
	rng := rand.New(rand.NewSource(31))
	var seqs [][]int
	for i := 0; i < 10; i++ {
		obs, _ := sample(truth, 200, rng)
		seqs = append(seqs, obs)
	}
	m, _ := NewDiscrete(2, 2)
	m.B = [][]float64{{0.55, 0.45}, {0.45, 0.55}}
	if _, err := m.BaumWelch(seqs, DefaultTrainConfig()); err != nil {
		t.Fatal(err)
	}
	// Up to state relabelling, each state should strongly prefer one
	// symbol.
	s0 := m.B[0][0]
	s1 := m.B[1][1]
	if s0 < 0.5 { // swapped labelling
		s0, s1 = m.B[0][1], m.B[1][0]
	}
	if s0 < 0.8 || s1 < 0.8 {
		t.Errorf("emissions not recovered: B = %v", m.B)
	}
}

func TestErrorsPropagate(t *testing.T) {
	m := twoStateModel()
	if _, _, _, err := m.Forward(nil); !errors.Is(err, ErrEmptySequence) {
		t.Errorf("Forward(nil) err = %v", err)
	}
	if _, _, _, err := m.Forward([]int{0, 5}); !errors.Is(err, ErrBadSymbol) {
		t.Errorf("Forward bad symbol err = %v", err)
	}
	if _, _, err := m.Viterbi([]int{-1}); !errors.Is(err, ErrBadSymbol) {
		t.Errorf("Viterbi bad symbol err = %v", err)
	}
	if _, err := m.BaumWelch(nil, DefaultTrainConfig()); !errors.Is(err, ErrEmptySequence) {
		t.Errorf("BaumWelch(nil) err = %v", err)
	}
	if _, err := m.Backward([]int{0}, []float64{1, 1}); err == nil {
		t.Error("Backward with wrong scale length accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := twoStateModel()
	c := m.Clone()
	c.A[0][0] = 0
	c.B[0][0] = 0
	c.Pi[0] = 0
	if m.A[0][0] == 0 || m.B[0][0] == 0 || m.Pi[0] == 0 {
		t.Error("Clone shares storage with original")
	}
}

func TestLikelihoodPropertySumsUnderOne(t *testing.T) {
	// For any valid observation sequence, P(obs) <= 1.
	m := twoStateModel()
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		obs := make([]int, len(raw))
		for i, b := range raw {
			obs[i] = int(b) % 2
		}
		lp, err := m.LogLikelihood(obs)
		if err != nil {
			return false
		}
		return lp <= 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThreeStateModel(t *testing.T) {
	// The machinery is generic in the state count; exercise a 3-state,
	// 3-symbol model end to end (e.g. rising / steady / falling truth
	// regimes).
	truth := &Discrete{
		A: [][]float64{
			{0.90, 0.05, 0.05},
			{0.05, 0.90, 0.05},
			{0.05, 0.05, 0.90},
		},
		B: [][]float64{
			{0.90, 0.05, 0.05},
			{0.05, 0.90, 0.05},
			{0.05, 0.05, 0.90},
		},
		Pi: []float64{1.0 / 3, 1.0 / 3, 1.0 / 3},
	}
	if err := truth.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	obs, states := sample(truth, 300, rng)
	path, _, err := truth.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for i := range path {
		if path[i] != states[i] {
			wrong++
		}
	}
	if frac := float64(wrong) / float64(len(path)); frac > 0.15 {
		t.Errorf("3-state Viterbi error rate %.3f", frac)
	}
	// Training a mildly perturbed model improves its likelihood.
	m, err := NewDiscrete(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	m.B = [][]float64{
		{0.5, 0.25, 0.25},
		{0.25, 0.5, 0.25},
		{0.25, 0.25, 0.5},
	}
	before, err := m.LogLikelihood(obs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.BaumWelch([][]int{obs}, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.LogLikelihood <= before {
		t.Errorf("3-state training did not improve LL: %v -> %v", before, res.LogLikelihood)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("trained 3-state model invalid: %v", err)
	}
	gamma, err := m.Posterior(obs)
	if err != nil {
		t.Fatal(err)
	}
	for tt, row := range gamma {
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("3-state gamma[%d] sums to %v", tt, sum)
		}
	}
}

func TestSingleObservation(t *testing.T) {
	m := twoStateModel()
	lp, err := m.LogLikelihood([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(m.Pi[0]*m.B[0][1] + m.Pi[1]*m.B[1][1])
	if math.Abs(lp-want) > 1e-12 {
		t.Errorf("single obs LL = %v, want %v", lp, want)
	}
	path, _, err := m.Viterbi([]int{1})
	if err != nil || len(path) != 1 {
		t.Fatalf("Viterbi single obs: path=%v err=%v", path, err)
	}
	if path[0] != 1 { // pi1*B=0.4*0.9=0.36 > pi0*B=0.6*0.15=0.09
		t.Errorf("Viterbi single obs state = %d, want 1", path[0])
	}
}
