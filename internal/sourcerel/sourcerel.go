// Package sourcerel estimates per-source reliability from decoded truth —
// the other half of the truth discovery problem statement ("identify the
// reliability of the sources and the truthfulness of claims"). SSTD's HMM
// deliberately avoids needing per-source reliability online (that is what
// makes it decomposable per claim, §III-E); this package recovers it as a
// diagnostic afterwards, by scoring every report against the decoded truth
// timeline and interval-estimating each source's accuracy.
//
// Because most social sensing sources contribute one or two reports
// (Table II's long tail), point estimates are worthless for them; the
// package reports Wilson score intervals, whose width encodes exactly the
// sparsity problem CATD attacks.
package sourcerel

import (
	"errors"
	"math"
	"sort"
	"time"

	"github.com/social-sensing/sstd/internal/socialsensing"
)

// Estimate is one source's reliability diagnostic.
type Estimate struct {
	Source socialsensing.SourceID
	// Reports is how many stance-bearing reports the source made.
	Reports int
	// Agreements is how many of them matched the decoded truth.
	Agreements int
	// Accuracy is the point estimate Agreements/Reports.
	Accuracy float64
	// Lower and Upper bound the Wilson score interval at the
	// configured confidence.
	Lower, Upper float64
}

// TruthFunc resolves the decoded truth of a claim at a time.
type TruthFunc func(claim socialsensing.ClaimID, at time.Time) (socialsensing.TruthValue, bool)

// Config tunes estimation.
type Config struct {
	// Z is the normal quantile of the interval; 1.96 ≈ 95%. Default 1.96.
	Z float64
	// MinReports drops sources with fewer stance-bearing reports from
	// Ranked output (they still appear in Estimates). Default 1.
	MinReports int
}

// DefaultConfig returns 95% intervals over all sources.
func DefaultConfig() Config { return Config{Z: 1.96, MinReports: 1} }

// ErrNoTruth is returned when the truth function resolves nothing.
var ErrNoTruth = errors.New("sourcerel: decoded truth resolves no reports")

// Estimates scores every source's reports against the decoded truth.
func Estimates(reports []socialsensing.Report, truth TruthFunc, cfg Config) (map[socialsensing.SourceID]Estimate, error) {
	if cfg.Z <= 0 {
		cfg.Z = 1.96
	}
	counts := make(map[socialsensing.SourceID]*Estimate)
	resolved := 0
	for _, r := range reports {
		if r.Attitude == socialsensing.NoReport {
			continue
		}
		v, ok := truth(r.Claim, r.Timestamp)
		if !ok {
			continue
		}
		resolved++
		e := counts[r.Source]
		if e == nil {
			e = &Estimate{Source: r.Source}
			counts[r.Source] = e
		}
		e.Reports++
		saysTrue := r.Attitude == socialsensing.Agree
		if saysTrue == (v == socialsensing.True) {
			e.Agreements++
		}
	}
	if resolved == 0 {
		return nil, ErrNoTruth
	}
	out := make(map[socialsensing.SourceID]Estimate, len(counts))
	for id, e := range counts {
		e.Accuracy = float64(e.Agreements) / float64(e.Reports)
		e.Lower, e.Upper = wilson(e.Agreements, e.Reports, cfg.Z)
		out[id] = *e
	}
	return out, nil
}

// Ranked returns estimates ordered most-reliable first (by interval lower
// bound, which penalizes sparse sources the way CATD's weighting does),
// filtered to sources with at least MinReports stance-bearing reports.
func Ranked(reports []socialsensing.Report, truth TruthFunc, cfg Config) ([]Estimate, error) {
	if cfg.MinReports < 1 {
		cfg.MinReports = 1
	}
	all, err := Estimates(reports, truth, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]Estimate, 0, len(all))
	for _, e := range all {
		if e.Reports >= cfg.MinReports {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lower != out[j].Lower {
			return out[i].Lower > out[j].Lower
		}
		if out[i].Reports != out[j].Reports {
			return out[i].Reports > out[j].Reports
		}
		return out[i].Source < out[j].Source
	})
	return out, nil
}

// wilson computes the Wilson score interval for k successes in n trials.
func wilson(k, n int, z float64) (lower, upper float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(k) / float64(n)
	nf := float64(n)
	z2 := z * z
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf)) / denom
	lower = math.Max(0, center-half)
	upper = math.Min(1, center+half)
	return lower, upper
}
