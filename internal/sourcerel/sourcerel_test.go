package sourcerel

import (
	"math"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/core"
	"github.com/social-sensing/sstd/internal/evalmetrics"
	"github.com/social-sensing/sstd/internal/socialsensing"
	"github.com/social-sensing/sstd/internal/tracegen"
)

func alwaysTrue(socialsensing.ClaimID, time.Time) (socialsensing.TruthValue, bool) {
	return socialsensing.True, true
}

func report(s socialsensing.SourceID, att socialsensing.Attitude) socialsensing.Report {
	return socialsensing.Report{
		Source: s, Claim: "c", Timestamp: time.Unix(0, 0),
		Attitude: att, Independence: 1,
	}
}

func TestEstimatesCountsAgreements(t *testing.T) {
	reports := []socialsensing.Report{
		report("good", socialsensing.Agree),
		report("good", socialsensing.Agree),
		report("good", socialsensing.Disagree),
		report("bad", socialsensing.Disagree),
		report("silent", socialsensing.NoReport),
	}
	est, err := Estimates(reports, alwaysTrue, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := est["good"]
	if g.Reports != 3 || g.Agreements != 2 {
		t.Errorf("good = %+v", g)
	}
	if math.Abs(g.Accuracy-2.0/3.0) > 1e-12 {
		t.Errorf("good accuracy = %v", g.Accuracy)
	}
	b := est["bad"]
	if b.Reports != 1 || b.Agreements != 0 || b.Accuracy != 0 {
		t.Errorf("bad = %+v", b)
	}
	if _, ok := est["silent"]; ok {
		t.Error("stance-free source scored")
	}
}

func TestEstimatesErrWithoutTruth(t *testing.T) {
	noTruth := func(socialsensing.ClaimID, time.Time) (socialsensing.TruthValue, bool) {
		return socialsensing.False, false
	}
	if _, err := Estimates([]socialsensing.Report{report("s", socialsensing.Agree)}, noTruth, DefaultConfig()); err == nil {
		t.Error("expected ErrNoTruth")
	}
}

func TestWilsonInterval(t *testing.T) {
	// Known value: 8/10 at z=1.96 → roughly [0.49, 0.94].
	lo, hi := wilson(8, 10, 1.96)
	if math.Abs(lo-0.49) > 0.02 || math.Abs(hi-0.943) > 0.02 {
		t.Errorf("wilson(8,10) = [%.3f, %.3f]", lo, hi)
	}
	// Interval narrows with more data at the same rate.
	lo2, hi2 := wilson(80, 100, 1.96)
	if hi2-lo2 >= hi-lo {
		t.Error("interval did not narrow with more data")
	}
	// Degenerate.
	if lo, hi := wilson(0, 0, 1.96); lo != 0 || hi != 1 {
		t.Errorf("wilson(0,0) = [%v, %v]", lo, hi)
	}
	// Bounds clamped.
	if lo, _ := wilson(0, 5, 1.96); lo < 0 {
		t.Error("lower below 0")
	}
	if _, hi := wilson(5, 5, 1.96); hi > 1 {
		t.Error("upper above 1")
	}
}

func TestRankedPenalizesSparseSources(t *testing.T) {
	// A 1-for-1 source has a worse lower bound than a 9-for-10 source.
	var reports []socialsensing.Report
	reports = append(reports, report("lucky", socialsensing.Agree))
	for i := 0; i < 9; i++ {
		reports = append(reports, report("steady", socialsensing.Agree))
	}
	reports = append(reports, report("steady", socialsensing.Disagree))
	ranked, err := Ranked(reports, alwaysTrue, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Source != "steady" {
		t.Errorf("ranking = %v; want steady first despite lower point accuracy", ranked)
	}
	// MinReports filter.
	cfg := DefaultConfig()
	cfg.MinReports = 5
	ranked, err = Ranked(reports, alwaysTrue, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 1 || ranked[0].Source != "steady" {
		t.Errorf("MinReports filter = %v", ranked)
	}
}

func TestRecoversGeneratorReliabilityOrdering(t *testing.T) {
	// End to end: decode a synthetic trace, estimate source reliability
	// from the decoded truth, and check the estimates correlate with the
	// generator's hidden reliabilities for high-volume sources.
	g, err := tracegen.New(tracegen.BostonBombing(), 21)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := g.Generate(0.01)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(tr.Start)
	cfg.ACS.Interval = tr.Duration() / 80
	eng, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestAll(tr.Reports); err != nil {
		t.Fatal(err)
	}
	decoded, err := eng.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	truthFn := func(c socialsensing.ClaimID, at time.Time) (socialsensing.TruthValue, bool) {
		return core.TruthAt(decoded[c], at)
	}
	_ = evalmetrics.TruthFunc(truthFn) // same contract as the eval package

	hidden := make(map[socialsensing.SourceID]float64, len(tr.Sources))
	for _, s := range tr.Sources {
		hidden[s.ID] = s.Reliability
	}
	cfgR := DefaultConfig()
	cfgR.MinReports = 10
	ranked, err := Ranked(tr.Reports, truthFn, cfgR)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) < 10 {
		t.Skipf("only %d high-volume sources at this scale", len(ranked))
	}
	// Top quartile of estimates should have higher hidden reliability
	// than the bottom quartile.
	q := len(ranked) / 4
	topMean, botMean := 0.0, 0.0
	for i := 0; i < q; i++ {
		topMean += hidden[ranked[i].Source]
		botMean += hidden[ranked[len(ranked)-1-i].Source]
	}
	topMean /= float64(q)
	botMean /= float64(q)
	if topMean <= botMean {
		t.Errorf("estimated ranking uncorrelated with hidden reliability: top %.3f vs bottom %.3f", topMean, botMean)
	}
}
