// Package core implements the paper's primary contribution: the Scalable
// Streaming Truth Discovery (SSTD) scheme of §III. Reports are aggregated
// into per-claim Aggregated Contribution Score (ACS) sequences over a
// sliding window (Eq. 4); a per-claim Hidden Markov Model is fit by
// Baum-Welch (Eq. 5) and the evolving truth is decoded with Viterbi
// (Eq. 6-8).
package core

import (
	"fmt"
	"time"

	"github.com/social-sensing/sstd/internal/socialsensing"
)

// ACSConfig controls how the ACS observation sequence is derived from raw
// reports.
type ACSConfig struct {
	// Interval is the width of one HMM time step. Reports are bucketed
	// into consecutive intervals starting at the stream origin.
	Interval time.Duration
	// WindowIntervals is the sliding window length sw of Eq. 4, in
	// intervals: ACS at step t sums contribution scores over steps
	// (t-sw, t]. Its size should track the expected truth change
	// frequency of the observed event.
	WindowIntervals int
}

// DefaultACSConfig matches a minute-level emergency trace: 1-minute steps
// with a 5-minute sliding window.
func DefaultACSConfig() ACSConfig {
	return ACSConfig{Interval: time.Minute, WindowIntervals: 5}
}

func (c ACSConfig) validate() error {
	if c.Interval <= 0 {
		return fmt.Errorf("core: ACS interval must be positive, got %v", c.Interval)
	}
	if c.WindowIntervals < 1 {
		return fmt.Errorf("core: ACS window must be >= 1 interval, got %d", c.WindowIntervals)
	}
	return nil
}

// ACSAccumulator builds the ACS sequence for one claim incrementally. It
// keeps only per-interval sums, so memory is O(#intervals), independent of
// report volume.
type ACSAccumulator struct {
	cfg    ACSConfig
	origin time.Time
	sums   []float64 // per-interval contribution score totals
	count  int       // reports ingested
}

// NewACSAccumulator creates an accumulator whose interval grid starts at
// origin.
func NewACSAccumulator(cfg ACSConfig, origin time.Time) (*ACSAccumulator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &ACSAccumulator{cfg: cfg, origin: origin}, nil
}

// Add ingests one report. Reports earlier than the origin are clamped into
// the first interval.
func (a *ACSAccumulator) Add(r socialsensing.Report) {
	idx := a.intervalIndex(r.Timestamp)
	for len(a.sums) <= idx {
		a.sums = append(a.sums, 0)
	}
	a.sums[idx] += r.ContributionScore()
	a.count++
}

// intervalIndex maps a timestamp to its interval number.
func (a *ACSAccumulator) intervalIndex(t time.Time) int {
	if t.Before(a.origin) {
		return 0
	}
	return int(t.Sub(a.origin) / a.cfg.Interval)
}

// Len returns the number of intervals currently covered.
func (a *ACSAccumulator) Len() int { return len(a.sums) }

// Count returns the number of reports ingested.
func (a *ACSAccumulator) Count() int { return a.count }

// Series materializes the ACS sequence: for each interval t the sum of
// contribution scores over the trailing sliding window (Eq. 4). The
// sequence has Len() entries; an empty accumulator yields nil.
func (a *ACSAccumulator) Series() []float64 {
	if len(a.sums) == 0 {
		return nil
	}
	out := make([]float64, len(a.sums))
	window := 0.0
	for t := range a.sums {
		window += a.sums[t]
		if t >= a.cfg.WindowIntervals {
			window -= a.sums[t-a.cfg.WindowIntervals]
		}
		out[t] = window
	}
	return out
}

// SeriesInto is Series writing into dst, growing it only when capacity is
// insufficient — the allocation-free variant the engine's steady-state
// decode path uses.
func (a *ACSAccumulator) SeriesInto(dst []float64) []float64 {
	if cap(dst) < len(a.sums) {
		dst = make([]float64, len(a.sums))
	} else {
		dst = dst[:len(a.sums)]
	}
	window := 0.0
	for t := range a.sums {
		window += a.sums[t]
		if t >= a.cfg.WindowIntervals {
			window -= a.sums[t-a.cfg.WindowIntervals]
		}
		dst[t] = window
	}
	return dst
}

// IntervalStart returns the wall-clock start of interval t.
func (a *ACSAccumulator) IntervalStart(t int) time.Time {
	return a.origin.Add(time.Duration(t) * a.cfg.Interval)
}

// Discretizer quantizes continuous ACS values into the symbol alphabet of
// the discrete HMM. Bins are defined by ascending edge values: a value v
// maps to the index of the first edge >= v (and to len(edges) when v is
// beyond the last edge).
type Discretizer struct {
	edges []float64
}

// NewDiscretizer builds a discretizer from strictly ascending edges.
func NewDiscretizer(edges []float64) (*Discretizer, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("core: discretizer needs at least one edge")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, fmt.Errorf("core: discretizer edges not ascending at %d: %v", i, edges)
		}
	}
	return &Discretizer{edges: append([]float64(nil), edges...)}, nil
}

// NewSymmetricDiscretizer builds 2k+1 bins symmetric around zero with the
// given positive thresholds, e.g. thresholds (0.5, 2) yield bins
// (-inf,-2], (-2,-0.5], (-0.5,0.5], (0.5,2], (2,inf) — strongly-negative
// through strongly-positive evidence.
func NewSymmetricDiscretizer(thresholds ...float64) (*Discretizer, error) {
	if len(thresholds) == 0 {
		return nil, fmt.Errorf("core: need at least one threshold")
	}
	edges := make([]float64, 0, 2*len(thresholds))
	for i := len(thresholds) - 1; i >= 0; i-- {
		if thresholds[i] <= 0 {
			return nil, fmt.Errorf("core: thresholds must be positive, got %v", thresholds[i])
		}
		edges = append(edges, -thresholds[i])
	}
	for _, th := range thresholds {
		edges = append(edges, th)
	}
	return NewDiscretizer(edges)
}

// Symbols returns the alphabet size (number of bins).
func (d *Discretizer) Symbols() int { return len(d.edges) + 1 }

// Quantize maps a single value to its bin.
func (d *Discretizer) Quantize(v float64) int {
	for i, e := range d.edges {
		if v <= e {
			return i
		}
	}
	return len(d.edges)
}

// QuantizeAll maps a sequence.
func (d *Discretizer) QuantizeAll(vs []float64) []int {
	return d.QuantizeAllInto(vs, nil)
}

// QuantizeAllInto maps a sequence into dst, growing it only when capacity
// is insufficient.
func (d *Discretizer) QuantizeAllInto(vs []float64, dst []int) []int {
	if cap(dst) < len(vs) {
		dst = make([]int, len(vs))
	} else {
		dst = dst[:len(vs)]
	}
	for i, v := range vs {
		dst[i] = d.Quantize(v)
	}
	return dst
}
