package core

import (
	"fmt"

	"github.com/social-sensing/sstd/internal/obs/flightrec"
	"github.com/social-sensing/sstd/internal/socialsensing"
)

// StreamingDecoder decodes one claim's truth incrementally with fixed-lag
// smoothing: each new ACS observation triggers a re-decode of only the
// trailing lag window, while estimates older than the lag are pinned. This
// bounds per-update cost for long-running streams — full Viterbi re-decode
// grows linearly with stream length — at the cost of not revising old
// decisions, which is exactly the trade a live deployment wants (the paper
// targets real-time responsiveness; historical revisions are pointless
// once the estimate has been acted on).
type StreamingDecoder struct {
	decoder *Decoder
	// Lag is how many trailing observations stay revisable.
	lag int

	series []float64
	// pinned[i] holds the frozen decision for interval i < frontier.
	pinned   []socialsensing.TruthValue
	frontier int

	// scratch backs every per-append decode; model is the previous
	// window's fit, the warm-start seed when cfg.Train.WarmStart is on.
	scratch    *DecodeScratch
	model      *TrainedModel
	trainIters int

	// fr probes window decodes and frontier rotations into the flight
	// recorder (nil, and free, when none is enabled).
	fr *flightrec.Ring
}

// NewStreamingDecoder wraps a Decoder with fixed-lag smoothing. lag must
// be at least 1; the paper's sliding-window intuition suggests a lag a few
// times the ACS window.
func NewStreamingDecoder(cfg DecoderConfig, lag int) (*StreamingDecoder, error) {
	if lag < 1 {
		return nil, fmt.Errorf("core: streaming decoder lag must be >= 1, got %d", lag)
	}
	dec, err := NewDecoder(cfg)
	if err != nil {
		return nil, err
	}
	return &StreamingDecoder{
		decoder: dec, lag: lag, scratch: NewDecodeScratch(),
		fr: flightrec.Fresh("stream"),
	}, nil
}

// decodeWindow trains on and decodes the current window, reusing the
// decoder scratch. With cfg.Train.WarmStart on, EM is seeded from the
// previous append's fit — consecutive windows share all but one
// observation, so the seed is already near the fixed point and the
// per-append training cost collapses to one or two EM iterations. The
// returned truth is scratch-backed, valid until the next call.
func (s *StreamingDecoder) decodeWindow() ([]socialsensing.TruthValue, error) {
	win := s.windowSeries()
	if len(win) == 0 {
		return nil, nil
	}
	var prev *TrainedModel
	if s.decoder.cfg.Train.WarmStart {
		prev = s.model
	}
	model, res, err := s.decoder.TrainWarmScratch(s.scratch, win, prev)
	if err != nil {
		return nil, err
	}
	s.model = model
	s.trainIters += res.Iterations
	return s.decoder.DecodeWithScratch(s.scratch, model, win)
}

// TrainIterations returns the total EM iterations spent across every
// decode so far — the cost a warm-started stream saves on.
func (s *StreamingDecoder) TrainIterations() int { return s.trainIters }

// Append ingests the next ACS observation and returns the current estimate
// for the newest interval.
func (s *StreamingDecoder) Append(acs float64) (socialsensing.TruthValue, error) {
	s.series = append(s.series, acs)
	tp := s.fr.Start()
	truth, err := s.decodeWindow()
	if err != nil {
		return socialsensing.False, err
	}
	tp = s.fr.Probe(flightrec.ProbeStreamAppend, tp, int64(len(s.series)), 0)
	// Pin everything that has fallen out of the lag window.
	newFrontier := len(s.series) - s.lag
	for i := s.frontier; i < newFrontier; i++ {
		s.pinned = append(s.pinned, truth[i-s.offset()])
	}
	if newFrontier > s.frontier {
		s.fr.Probe(flightrec.ProbeStreamRotate, tp, int64(newFrontier-s.frontier), 0)
		s.frontier = newFrontier
	}
	return truth[len(truth)-1], nil
}

// windowSeries returns the revisable suffix plus pinned-context prefix the
// decoder sees: the trailing lag observations extended backwards by one
// lag of context so the HMM has history to anchor its state.
func (s *StreamingDecoder) windowSeries() []float64 {
	start := s.offset()
	return s.series[start:]
}

// offset is the index of the first observation passed to the decoder.
func (s *StreamingDecoder) offset() int {
	start := len(s.series) - 2*s.lag
	if start < 0 {
		return 0
	}
	return start
}

// Len returns the number of observations ingested.
func (s *StreamingDecoder) Len() int { return len(s.series) }

// Timeline returns the full estimate history: pinned decisions followed by
// the current decode of the revisable suffix.
func (s *StreamingDecoder) Timeline() ([]socialsensing.TruthValue, error) {
	if len(s.series) == 0 {
		return nil, nil
	}
	truth, err := s.decodeWindow()
	if err != nil {
		return nil, err
	}
	out := make([]socialsensing.TruthValue, 0, len(s.series))
	out = append(out, s.pinned[:s.frontier]...)
	// The decode window starts at offset(); skip the part already pinned.
	skip := s.frontier - s.offset()
	if skip < 0 {
		skip = 0
	}
	out = append(out, truth[skip:]...)
	return out, nil
}
