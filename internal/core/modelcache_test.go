package core

import (
	"encoding/json"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/socialsensing"
)

func cachedEngine(t *testing.T, growth float64) *Engine {
	t.Helper()
	cfg := DefaultConfig(origin())
	cfg.ACS.WindowIntervals = 3
	cfg.RetrainGrowth = growth
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestModelCacheReusedUntilGrowth(t *testing.T) {
	e := cachedEngine(t, 0.5)
	if err := synthClaim(e, "c", 30, 15, 0.1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.DecodeClaim("c"); err != nil {
		t.Fatal(err)
	}
	m1, err := e.TrainedModelFor("c")
	if err != nil {
		t.Fatal(err)
	}
	// A small amount of new data (under 50% growth) must not retrain:
	// the model pointer stays identical.
	for k := 0; k < 5; k++ {
		if err := e.Ingest(socialsensing.Report{
			Source: "s", Claim: "c", Attitude: socialsensing.Agree,
			Timestamp: origin().Add(31 * time.Minute), Independence: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.DecodeClaim("c"); err != nil {
		t.Fatal(err)
	}
	m2, err := e.TrainedModelFor("c")
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("model retrained despite growth below threshold")
	}
	// Doubling the data forces a retrain.
	if err := synthClaim(e, "c", 60, 15, 0.1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := e.DecodeClaim("c"); err != nil {
		t.Fatal(err)
	}
	m3, err := e.TrainedModelFor("c")
	if err != nil {
		t.Fatal(err)
	}
	if m1 == m3 {
		t.Error("model not retrained after large growth")
	}
}

func TestZeroGrowthAlwaysRetrains(t *testing.T) {
	e := cachedEngine(t, 0)
	if err := synthClaim(e, "c", 20, 10, 0.1, 1); err != nil {
		t.Fatal(err)
	}
	m1, err := e.TrainedModelFor("c")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := e.TrainedModelFor("c")
	if err != nil {
		t.Fatal(err)
	}
	if m1 == m2 {
		t.Error("RetrainGrowth=0 reused a cached model")
	}
}

func TestCachedDecodeMatchesFreshDecode(t *testing.T) {
	cached := cachedEngine(t, 5) // effectively never retrain after first
	fresh := cachedEngine(t, 0)
	for _, e := range []*Engine{cached, fresh} {
		if err := synthClaim(e, "c", 40, 20, 0.1, 3); err != nil {
			t.Fatal(err)
		}
	}
	// Prime the cache, then append a little more data to both.
	if _, err := cached.DecodeClaim("c"); err != nil {
		t.Fatal(err)
	}
	for _, e := range []*Engine{cached, fresh} {
		for k := 0; k < 3; k++ {
			if err := e.Ingest(socialsensing.Report{
				Source: "s", Claim: "c", Attitude: socialsensing.Disagree,
				Timestamp: origin().Add(41 * time.Minute), Independence: 1,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	a, err := cached.DecodeClaim("c")
	if err != nil {
		t.Fatal(err)
	}
	b, err := fresh.DecodeClaim("c")
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	diff := 0
	for i := range a {
		if a[i].Value != b[i].Value {
			diff++
		}
	}
	// Cached-model Viterbi on slightly newer data should agree almost
	// everywhere with a freshly trained model.
	if diff > 3 {
		t.Errorf("cached vs fresh decode differ at %d/%d intervals", diff, len(a))
	}
}

func TestTrainedModelSerializable(t *testing.T) {
	e := cachedEngine(t, 0.2)
	if err := synthClaim(e, "c", 30, 10, 0.1, 4); err != nil {
		t.Fatal(err)
	}
	m, err := e.TrainedModelFor("c")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var restored TrainedModel
	if err := json.Unmarshal(raw, &restored); err != nil {
		t.Fatal(err)
	}
	if restored.Emissions != m.Emissions || restored.TrueState != m.TrueState {
		t.Errorf("metadata lost: %+v vs %+v", restored, m)
	}
	// The restored model decodes identically.
	d, err := NewDecoder(DefaultDecoderConfig())
	if err != nil {
		t.Fatal(err)
	}
	series := e.ACSSeries("c")
	a, err := d.DecodeWith(m, series)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.DecodeWith(&restored, series)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("restored model decode differs at %d", i)
		}
	}
}

func TestTrainedModelForUnknownClaim(t *testing.T) {
	e := cachedEngine(t, 0.2)
	if _, err := e.TrainedModelFor("nope"); err == nil {
		t.Error("unknown claim accepted")
	}
}

func TestDecodeWithValidation(t *testing.T) {
	d, _ := NewDecoder(DefaultDecoderConfig())
	if _, err := d.DecodeWith(nil, []float64{1}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := d.DecodeWith(&TrainedModel{Emissions: DiscreteEmissions}, []float64{1}); err == nil {
		t.Error("model without parameters accepted")
	}
	if _, err := d.Train(nil); err == nil {
		t.Error("empty series trained")
	}
	got, err := d.DecodeWith(&TrainedModel{}, nil)
	if err != nil || got != nil {
		t.Errorf("empty series decode = %v, %v", got, err)
	}
}
