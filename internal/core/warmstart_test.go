package core

import (
	"math/rand"
	"testing"

	"github.com/social-sensing/sstd/internal/obs"
)

// flipSeries is a noisy ACS ramp: positive evidence that flips negative at
// flip, the canonical truth-change shape the decoder targets.
func flipSeries(n, flip int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		v := 4.0
		if i >= flip {
			v = -4.0
		}
		out[i] = v + rng.NormFloat64()
	}
	return out
}

func TestTrainWarmIterationsDrop(t *testing.T) {
	d, err := NewDecoder(DefaultDecoderConfig())
	if err != nil {
		t.Fatal(err)
	}
	series := flipSeries(80, 40, 9)
	cold, resCold, err := d.TrainWarm(series, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resCold.WarmStarted {
		t.Fatal("cold train reported WarmStarted")
	}

	// The same series again, seeded from its own fit: the parameters are
	// already at the EM fixed point, so the warm run should stop after a
	// single confirming iteration.
	_, resSame, err := d.TrainWarm(series, cold)
	if err != nil {
		t.Fatal(err)
	}
	if !resSame.WarmStarted || !resSame.Converged {
		t.Fatalf("warm refit on identical series: %+v", resSame)
	}
	if resSame.Iterations >= resCold.Iterations {
		t.Errorf("warm refit took %d iterations, cold took %d", resSame.Iterations, resCold.Iterations)
	}

	// A grown series (the streaming case): warm must beat a fresh cold fit
	// of the same data.
	grown := append(append([]float64(nil), series...), flipSeries(8, 0, 10)...)
	for i := len(series); i < len(grown); i++ {
		grown[i] = -4 // truth stays flipped; the stream just grew
	}
	_, resWarm, err := d.TrainWarm(grown, cold)
	if err != nil {
		t.Fatal(err)
	}
	_, resCold2, err := d.TrainWarm(grown, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !resWarm.WarmStarted {
		t.Fatal("grown-series refit did not warm start")
	}
	if resWarm.Iterations >= resCold2.Iterations {
		t.Errorf("warm refit on grown series took %d iterations, cold %d", resWarm.Iterations, resCold2.Iterations)
	}
}

func TestTrainWarmIncompatibleSeedFallsBackCold(t *testing.T) {
	d, err := NewDecoder(DefaultDecoderConfig())
	if err != nil {
		t.Fatal(err)
	}
	series := flipSeries(40, 20, 3)
	// A Gaussian seed offered to a discrete decoder must be ignored.
	gd, err := NewDecoder(DecoderConfig{Emissions: GaussianEmissions, Train: DefaultDecoderConfig().Train})
	if err != nil {
		t.Fatal(err)
	}
	gauss, _, err := gd.TrainWarm(series, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, res, err := d.TrainWarm(series, gauss)
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmStarted {
		t.Error("family-mismatched seed was warm started")
	}
	if m.Discrete == nil || m.Emissions != DiscreteEmissions {
		t.Errorf("fallback produced wrong model: %+v", m)
	}
}

func TestStreamingWarmColdTimelinesIdentical(t *testing.T) {
	cfgCold := DefaultDecoderConfig()
	cfgWarm := DefaultDecoderConfig()
	cfgWarm.Train.WarmStart = true
	sCold, err := NewStreamingDecoder(cfgCold, 4)
	if err != nil {
		t.Fatal(err)
	}
	sWarm, err := NewStreamingDecoder(cfgWarm, 4)
	if err != nil {
		t.Fatal(err)
	}
	series := flipSeries(90, 45, 21)
	for i, v := range series {
		vc, err := sCold.Append(v)
		if err != nil {
			t.Fatal(err)
		}
		vw, err := sWarm.Append(v)
		if err != nil {
			t.Fatal(err)
		}
		if vc != vw {
			t.Fatalf("append %d: warm estimate %v differs from cold %v", i, vw, vc)
		}
	}
	tlCold, err := sCold.Timeline()
	if err != nil {
		t.Fatal(err)
	}
	tlWarm, err := sWarm.Timeline()
	if err != nil {
		t.Fatal(err)
	}
	if len(tlCold) != len(tlWarm) {
		t.Fatalf("timeline lengths differ: %d vs %d", len(tlCold), len(tlWarm))
	}
	for i := range tlCold {
		if tlCold[i] != tlWarm[i] {
			t.Fatalf("timeline[%d]: warm %v differs from cold %v", i, tlWarm[i], tlCold[i])
		}
	}
	if w, c := sWarm.TrainIterations(), sCold.TrainIterations(); w >= c {
		t.Errorf("warm stream spent %d EM iterations, cold spent %d — warm start saved nothing", w, c)
	}
}

func TestEngineWarmStartMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := DefaultConfig(origin())
	cfg.ACS.WindowIntervals = 3
	cfg.RetrainGrowth = 0.2
	cfg.Decoder.Train.WarmStart = true
	cfg.Metrics = reg
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := synthClaim(e, "c", 60, 30, 0.1, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := e.DecodeClaim("c"); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("core_trains_warm_total").Value(); got != 0 {
		t.Fatalf("first decode counted %d warm trains, want 0", got)
	}
	// Grow the evidence past the retrain threshold and decode again: the
	// stale cached model becomes the warm seed for its replacement.
	if err := synthClaim(e, "c", 60, 30, 0.1, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := e.DecodeClaim("c"); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("core_trains_warm_total").Value(); got != 1 {
		t.Errorf("core_trains_warm_total = %d, want 1", got)
	}
	if got := reg.Counter("hmm_warmstart_iterations_saved_total").Value(); got <= 0 {
		t.Errorf("hmm_warmstart_iterations_saved_total = %d, want > 0", got)
	}
}

// TestEngineWarmStartSameTimeline pins that enabling warm start does not
// change what the engine decodes.
func TestEngineWarmStartSameTimeline(t *testing.T) {
	run := func(warm bool) []Estimate {
		cfg := DefaultConfig(origin())
		cfg.ACS.WindowIntervals = 3
		cfg.RetrainGrowth = 0.2
		cfg.Decoder.Train.WarmStart = warm
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var est []Estimate
		for part := 0; part < 3; part++ {
			if err := synthClaim(e, "c", 60, 30, 0.1, int64(7+part)); err != nil {
				t.Fatal(err)
			}
			est, err = e.DecodeClaim("c")
			if err != nil {
				t.Fatal(err)
			}
		}
		return est
	}
	cold := run(false)
	warm := run(true)
	if len(cold) != len(warm) {
		t.Fatalf("estimate counts differ: %d vs %d", len(cold), len(warm))
	}
	for i := range cold {
		if cold[i].Value != warm[i].Value {
			t.Fatalf("interval %d: warm %v differs from cold %v", i, warm[i].Value, cold[i].Value)
		}
	}
}

func TestDecodeClaimIntoZeroAllocs(t *testing.T) {
	cfg := DefaultConfig(origin())
	cfg.ACS.WindowIntervals = 3
	cfg.RetrainGrowth = 0.5
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := synthClaim(e, "c", 60, 30, 0.1, 5); err != nil {
		t.Fatal(err)
	}
	sc := NewDecodeScratch()
	var dst []Estimate
	// Warm-up: trains and caches the model, sizes every scratch buffer.
	dst, err = e.DecodeClaimInto(sc, "c", dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(dst) == 0 {
		t.Fatal("warm-up decode returned no estimates")
	}
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		dst, err = e.DecodeClaimInto(sc, "c", dst)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state DecodeClaimInto allocates %.1f objects per run, want 0", allocs)
	}
}

// TestDecodeClaimIntoMatchesDecodeClaim pins the scratch path to the
// allocating one.
func TestDecodeClaimIntoMatchesDecodeClaim(t *testing.T) {
	e := newTestEngine(t, 0)
	if err := synthClaim(e, "c", 50, 25, 0.1, 17); err != nil {
		t.Fatal(err)
	}
	want, err := e.DecodeClaim("c")
	if err != nil {
		t.Fatal(err)
	}
	sc := NewDecodeScratch()
	got, err := e.DecodeClaimInto(sc, "c", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("estimate %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}
