package core

import (
	"testing"

	"github.com/social-sensing/sstd/internal/hmm/hmmtest"
)

// benchEngine returns an engine with one 120-interval claim and a warm
// model cache, the steady state a long-running TD worker decodes from.
func benchEngine(b *testing.B) *Engine {
	b.Helper()
	cfg := DefaultConfig(origin())
	cfg.ACS.WindowIntervals = 3
	cfg.RetrainGrowth = 0.5
	e, err := NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := synthClaim(e, "c", 120, 60, 0.1, 42); err != nil {
		b.Fatal(err)
	}
	if _, err := e.DecodeClaim("c"); err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkDecodeClaim measures the steady-state scratch decode path:
// cached model, reused workspace, estimates written in place.
func BenchmarkDecodeClaim(b *testing.B) {
	e := benchEngine(b)
	sc := NewDecodeScratch()
	var dst []Estimate
	var err error
	if dst, err = e.DecodeClaimInto(sc, "c", dst); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dst, err = e.DecodeClaimInto(sc, "c", dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeClaimSeed replays the seed steady-state decode on the
// frozen hmmtest kernels: a fresh ACS series, quantized observations,
// per-cell-log Viterbi lattice and estimate slice were all allocated on
// every decode.
func BenchmarkDecodeClaimSeed(b *testing.B) {
	e := benchEngine(b)
	model, err := e.TrainedModelFor("c")
	if err != nil {
		b.Fatal(err)
	}
	e.mu.RLock()
	st := e.claims["c"]
	e.mu.RUnlock()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series := st.acc.Series()
		obs := e.decoder.disc.QuantizeAll(series)
		path, _ := hmmtest.Viterbi(model.Discrete, obs)
		truth := pathToTruth(path, model.TrueState)
		est := make([]Estimate, len(truth))
		for t, v := range truth {
			est[t] = Estimate{Claim: "c", Interval: t, Start: st.acc.IntervalStart(t), Value: v}
		}
		if len(est) == 0 {
			b.Fatal("empty decode")
		}
	}
}

func BenchmarkStreamAppend(b *testing.B) {
	bench := func(b *testing.B, warm bool) {
		cfg := DefaultDecoderConfig()
		cfg.Train.WarmStart = warm
		s, err := NewStreamingDecoder(cfg, 4)
		if err != nil {
			b.Fatal(err)
		}
		vals := flipSeries(256, 128, 42)
		// Prime past the 2*lag window so every measured append does a
		// full sliding-window retrain+decode.
		for _, v := range vals[:16] {
			if _, err := s.Append(v); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Append(vals[i%len(vals)]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("cold", func(b *testing.B) { bench(b, false) })
	b.Run("warm", func(b *testing.B) { bench(b, true) })
}
