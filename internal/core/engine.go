package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/socialsensing"
)

// Estimate is the decoded truth of one claim at one interval.
type Estimate struct {
	Claim socialsensing.ClaimID
	// Interval is the index of the HMM time step.
	Interval int
	// Start is the wall-clock start of the interval.
	Start time.Time
	Value socialsensing.TruthValue
}

// Config parameterizes an Engine.
type Config struct {
	ACS     ACSConfig
	Decoder DecoderConfig
	// Origin anchors the interval grid. Required.
	Origin time.Time
	// Parallelism bounds concurrent per-claim decodes in DecodeAll.
	// Zero means decode claims sequentially.
	Parallelism int
	// RetrainGrowth controls per-claim model caching: a claim's HMM is
	// retrained only when its report count has grown by this fraction
	// since the cached model was fitted (Viterbi still runs on the
	// current series every decode). Zero retrains on every decode — the
	// exact per-decode EM of the paper; 0.2 is a good streaming setting
	// (retrain after 20% more evidence).
	RetrainGrowth float64
	// Metrics enables engine telemetry (ingest counters, ACS build /
	// train / Viterbi latency histograms). Nil disables it at the cost
	// of one nil check per event.
	Metrics *obs.Registry
}

// DefaultConfig returns the paper's default SSTD setup anchored at origin.
func DefaultConfig(origin time.Time) Config {
	return Config{
		ACS:     DefaultACSConfig(),
		Decoder: DefaultDecoderConfig(),
		Origin:  origin,
	}
}

// Engine is the streaming SSTD truth discovery engine. Reports stream in
// via Ingest; DecodeAll (or DecodeClaim, which is what a distributed TD
// job runs) produces per-interval truth estimates. Engine is safe for
// concurrent use.
type Engine struct {
	cfg     Config
	decoder *Decoder

	// Telemetry handles; all nil when cfg.Metrics is nil.
	cIngested   *obs.Counter
	cDecodes    *obs.Counter
	cTrains     *obs.Counter
	cTrainsWarm *obs.Counter
	cWarmSaved  *obs.Counter
	gClaims     *obs.Gauge
	hACS        *obs.Histogram
	hTrain      *obs.Histogram
	hViterbi    *obs.Histogram

	mu     sync.RWMutex
	claims map[socialsensing.ClaimID]*claimState
}

// claimState is one claim's accumulator plus its cached trained model.
type claimState struct {
	acc *ACSAccumulator
	// model is the cached λ_u; trainedCount is the report count it was
	// fitted at.
	model        *TrainedModel
	trainedCount int
	// coldIters is the EM iteration count of the claim's last cold fit,
	// the baseline the warm-start savings counter measures against.
	coldIters int
}

// NewEngine builds an engine from cfg.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Origin.IsZero() {
		return nil, fmt.Errorf("core: engine config needs an origin time")
	}
	if err := cfg.ACS.validate(); err != nil {
		return nil, err
	}
	dec, err := NewDecoder(cfg.Decoder)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		decoder: dec,
		claims:  make(map[socialsensing.ClaimID]*claimState),
	}
	if reg := cfg.Metrics; reg != nil {
		e.cIngested = reg.Counter("core_reports_ingested_total")
		e.cDecodes = reg.Counter("core_decodes_total")
		e.cTrains = reg.Counter("core_trains_total")
		e.cTrainsWarm = reg.Counter("core_trains_warm_total")
		e.cWarmSaved = reg.Counter("hmm_warmstart_iterations_saved_total")
		e.gClaims = reg.Gauge("core_claims")
		e.hACS = reg.Histogram("core_acs_build_ms", nil)
		e.hTrain = reg.Histogram("core_train_ms", nil)
		e.hViterbi = reg.Histogram("core_viterbi_ms", nil)
	}
	return e, nil
}

// Ingest adds one report to its claim's ACS accumulator, creating the
// per-claim state on first sight (the paper dynamically spawns a TD job
// when a new claim appears).
func (e *Engine) Ingest(r socialsensing.Report) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.claims[r.Claim]
	if !ok {
		acc, err := NewACSAccumulator(e.cfg.ACS, e.cfg.Origin)
		if err != nil {
			return err
		}
		st = &claimState{acc: acc}
		e.claims[r.Claim] = st
		e.gClaims.SetInt(len(e.claims))
	}
	st.acc.Add(r)
	e.cIngested.Inc()
	return nil
}

// IngestAll adds a batch of reports.
func (e *Engine) IngestAll(rs []socialsensing.Report) error {
	for _, r := range rs {
		if err := e.Ingest(r); err != nil {
			return err
		}
	}
	return nil
}

// Claims returns the claim IDs seen so far, sorted.
func (e *Engine) Claims() []socialsensing.ClaimID {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]socialsensing.ClaimID, 0, len(e.claims))
	for id := range e.claims {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ReportCount returns the total number of ingested reports.
func (e *Engine) ReportCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := 0
	for _, st := range e.claims {
		n += st.acc.Count()
	}
	return n
}

// ACSSeries returns the current ACS sequence for a claim (nil when the
// claim is unknown).
func (e *Engine) ACSSeries(id socialsensing.ClaimID) []float64 {
	e.mu.RLock()
	st, ok := e.claims[id]
	e.mu.RUnlock()
	if !ok {
		return nil
	}
	return st.acc.Series()
}

// DecodeClaim runs the full TD job for one claim: materialize the ACS
// sequence, train (or reuse) the claim's HMM and Viterbi-decode its truth
// timeline. With RetrainGrowth > 0 the cached model is reused until the
// claim's evidence has grown by that fraction.
func (e *Engine) DecodeClaim(id socialsensing.ClaimID) ([]Estimate, error) {
	sc := getScratch()
	defer putScratch(sc)
	return e.DecodeClaimInto(sc, id, nil)
}

// DecodeClaimInto is DecodeClaim running on the caller's scratch buffers,
// writing the estimates into dst (grown only when capacity is
// insufficient; pass nil for a fresh slice). On the steady-state path —
// cached model still fresh, buffers warmed — it performs zero heap
// allocations, which is what bounds the per-decode tail latency of a
// long-running TD worker.
func (e *Engine) DecodeClaimInto(sc *DecodeScratch, id socialsensing.ClaimID, dst []Estimate) ([]Estimate, error) {
	e.mu.RLock()
	st, ok := e.claims[id]
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown claim %q", id)
	}
	model, series, err := e.claimModel(st, sc)
	if err != nil {
		return nil, fmt.Errorf("claim %q: %w", id, err)
	}
	if len(series) == 0 {
		return dst[:0], nil
	}
	viterbiStart := time.Now()
	truth, err := e.decoder.DecodeWithScratch(sc, model, series)
	e.hViterbi.ObserveDuration(time.Since(viterbiStart))
	e.cDecodes.Inc()
	if err != nil {
		return nil, fmt.Errorf("claim %q: %w", id, err)
	}
	if cap(dst) < len(truth) {
		dst = make([]Estimate, len(truth))
	} else {
		dst = dst[:len(truth)]
	}
	for t, v := range truth {
		dst[t] = Estimate{
			Claim:    id,
			Interval: t,
			Start:    st.acc.IntervalStart(t),
			Value:    v,
		}
	}
	return dst, nil
}

// claimModel returns the claim's trained model and the ACS series the
// cache decision was made against, refitting when the cache is cold or
// stale. With warm starting enabled, a stale cache entry still serves as
// the EM seed for its own replacement.
func (e *Engine) claimModel(st *claimState, sc *DecodeScratch) (*TrainedModel, []float64, error) {
	e.mu.Lock()
	count := st.acc.Count()
	cached := st.model
	coldIters := st.coldIters
	stale := cached == nil ||
		e.cfg.RetrainGrowth <= 0 ||
		float64(count) >= float64(st.trainedCount)*(1+e.cfg.RetrainGrowth)
	acsStart := time.Now()
	sc.series = st.acc.SeriesInto(sc.series)
	series := sc.series
	e.mu.Unlock()
	e.hACS.ObserveDuration(time.Since(acsStart))
	if len(series) == 0 {
		return nil, nil, nil
	}
	if !stale {
		return cached, series, nil
	}
	var prev *TrainedModel
	if e.cfg.Decoder.Train.WarmStart {
		prev = cached
	}
	trainStart := time.Now()
	model, res, err := e.decoder.TrainWarmScratch(sc, series, prev)
	e.hTrain.ObserveDuration(time.Since(trainStart))
	e.cTrains.Inc()
	if err != nil {
		return nil, nil, err
	}
	if res.WarmStarted {
		e.cTrainsWarm.Inc()
		if saved := coldIters - res.Iterations; saved > 0 {
			e.cWarmSaved.Add(int64(saved))
		}
	}
	e.mu.Lock()
	st.model = model
	st.trainedCount = count
	if !res.WarmStarted {
		st.coldIters = res.Iterations
	}
	e.mu.Unlock()
	return model, series, nil
}

// TrainedModelFor exposes the claim's current fitted parameter set λ_u
// (training it if needed), e.g. to persist offline-trained models. The
// returned model is shared; treat it as read-only.
func (e *Engine) TrainedModelFor(id socialsensing.ClaimID) (*TrainedModel, error) {
	e.mu.RLock()
	st, ok := e.claims[id]
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown claim %q", id)
	}
	sc := getScratch()
	defer putScratch(sc)
	model, series, err := e.claimModel(st, sc)
	if err != nil {
		return nil, err
	}
	if len(series) == 0 {
		return nil, fmt.Errorf("core: claim %q has no observations", id)
	}
	return model, nil
}

// DecodeAll decodes every claim, optionally in parallel, and returns the
// estimates grouped by claim.
func (e *Engine) DecodeAll() (map[socialsensing.ClaimID][]Estimate, error) {
	ids := e.Claims()
	out := make(map[socialsensing.ClaimID][]Estimate, len(ids))
	if e.cfg.Parallelism <= 1 {
		for _, id := range ids {
			est, err := e.DecodeClaim(id)
			if err != nil {
				return nil, err
			}
			out[id] = est
		}
		return out, nil
	}

	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	sem := make(chan struct{}, e.cfg.Parallelism)
	for _, id := range ids {
		wg.Add(1)
		go func(id socialsensing.ClaimID) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			est, err := e.DecodeClaim(id)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			out[id] = est
		}(id)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// TruthAt evaluates a decoded estimate timeline at an arbitrary time:
// the value of the latest interval starting at or before t. Times before
// the first interval report the first estimate.
func TruthAt(estimates []Estimate, t time.Time) (socialsensing.TruthValue, bool) {
	if len(estimates) == 0 {
		return socialsensing.False, false
	}
	v := estimates[0].Value
	for _, e := range estimates {
		if e.Start.After(t) {
			break
		}
		v = e.Value
	}
	return v, true
}
