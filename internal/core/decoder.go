package core

import (
	"fmt"

	"github.com/social-sensing/sstd/internal/hmm"
	"github.com/social-sensing/sstd/internal/socialsensing"
)

// EmissionKind selects the HMM emission family used to model ACS
// observations.
type EmissionKind int

// Emission families.
const (
	// DiscreteEmissions quantizes ACS values into symbol bins (the
	// model described in the paper).
	DiscreteEmissions EmissionKind = iota + 1
	// GaussianEmissions models raw ACS values with per-state normal
	// densities (an extension; avoids choosing bin edges).
	GaussianEmissions
)

// DecoderConfig parameterizes the per-claim HMM truth decoder.
type DecoderConfig struct {
	Emissions EmissionKind
	// Thresholds defines the symmetric discretizer bins for
	// DiscreteEmissions. Default (0.5, 2).
	Thresholds []float64
	// Train controls Baum-Welch.
	Train hmm.TrainConfig
}

// DefaultDecoderConfig returns the paper's discrete-emission setup. The
// default training regime fits transitions and the initial distribution by
// EM while keeping the informative emission prior frozen: with one short
// ACS sequence per claim, full emission re-estimation drifts the hidden
// state semantics and measurably hurts decode accuracy (see the emission
// ablation in EXPERIMENTS.md).
func DefaultDecoderConfig() DecoderConfig {
	train := hmm.DefaultTrainConfig()
	train.FreezeEmissions = true
	return DecoderConfig{
		Emissions:  DiscreteEmissions,
		Thresholds: []float64{0.5, 2},
		Train:      train,
	}
}

// Decoder turns one claim's ACS sequence into an estimated truth sequence.
// The two hidden states are the claim being False (state 0) and True
// (state 1); emissions are initialized with an informative prior — the
// True state skews toward positive ACS, the False state toward negative —
// and then refined by unsupervised EM (Eq. 5), which keeps the state
// semantics anchored while adapting to each claim's evidence level.
type Decoder struct {
	cfg  DecoderConfig
	disc *Discretizer
}

// NewDecoder validates the configuration and builds a decoder.
func NewDecoder(cfg DecoderConfig) (*Decoder, error) {
	switch cfg.Emissions {
	case DiscreteEmissions, GaussianEmissions:
	default:
		return nil, fmt.Errorf("core: unknown emission kind %d", cfg.Emissions)
	}
	d := &Decoder{cfg: cfg}
	if cfg.Emissions == DiscreteEmissions {
		th := cfg.Thresholds
		if len(th) == 0 {
			th = []float64{0.5, 2}
		}
		disc, err := NewSymmetricDiscretizer(th...)
		if err != nil {
			return nil, err
		}
		d.disc = disc
	}
	return d, nil
}

// TrainedModel is a fitted per-claim parameter set λ_u (Eq. 5) with its
// state semantics resolved. Models can be trained offline, serialized
// (both HMM families marshal to JSON) and reused across decodes — the
// paper trains offline and decodes online, and the Engine caches these per
// claim.
type TrainedModel struct {
	// Exactly one of Discrete / Gauss is set, matching Emissions.
	Discrete  *hmm.Discrete `json:"discrete,omitempty"`
	Gauss     *hmm.Gaussian `json:"gaussian,omitempty"`
	Emissions EmissionKind  `json:"emissions"`
	// TrueState is the hidden state index meaning "claim is true".
	TrueState int `json:"trueState"`
}

// Decode estimates the truth value of the claim at every interval of the
// ACS series. It trains a fresh 2-state HMM on the sequence and Viterbi-
// decodes it. An empty series yields an empty result.
func (d *Decoder) Decode(acs []float64) ([]socialsensing.TruthValue, error) {
	if len(acs) == 0 {
		return nil, nil
	}
	m, err := d.Train(acs)
	if err != nil {
		return nil, err
	}
	return d.DecodeWith(m, acs)
}

// Train fits a claim model on the ACS series without decoding.
func (d *Decoder) Train(acs []float64) (*TrainedModel, error) {
	m, _, err := d.TrainWarm(acs, nil)
	return m, err
}

// TrainWarm fits a claim model on the ACS series, seeding EM from prev —
// a model previously fitted to a prefix of the same stream — instead of
// the uniform informative prior. When the stream has only grown a little,
// the previous fit is already near the EM fixed point and training
// converges in one or two iterations instead of tens. prev is cloned, not
// mutated (cached models are shared). A nil, family-mismatched or
// shape-mismatched prev, and a warm fit that fails to converge within the
// iteration budget, all fall back to the usual cold start, so warm
// starting never degrades the fitted model. The returned TrainResult
// reports the iterations actually spent and whether the warm seed was
// used (WarmStarted).
func (d *Decoder) TrainWarm(acs []float64, prev *TrainedModel) (*TrainedModel, hmm.TrainResult, error) {
	sc := getScratch()
	defer putScratch(sc)
	return d.TrainWarmScratch(sc, acs, prev)
}

// TrainWarmScratch is TrainWarm running on the caller's scratch buffers.
func (d *Decoder) TrainWarmScratch(sc *DecodeScratch, acs []float64, prev *TrainedModel) (*TrainedModel, hmm.TrainResult, error) {
	if len(acs) == 0 {
		return nil, hmm.TrainResult{}, fmt.Errorf("core: cannot train on an empty series")
	}
	switch d.cfg.Emissions {
	case GaussianEmissions:
		return d.trainGaussianWS(sc, acs, prev)
	default:
		return d.trainDiscreteWS(sc, acs, prev)
	}
}

// DecodeWith Viterbi-decodes the series under a previously trained model.
func (d *Decoder) DecodeWith(m *TrainedModel, acs []float64) ([]socialsensing.TruthValue, error) {
	if len(acs) == 0 {
		return nil, nil
	}
	if m == nil {
		return nil, fmt.Errorf("core: nil trained model")
	}
	switch m.Emissions {
	case GaussianEmissions:
		if m.Gauss == nil {
			return nil, fmt.Errorf("core: gaussian model missing parameters")
		}
		path, _, err := m.Gauss.Viterbi(acs)
		if err != nil {
			return nil, fmt.Errorf("decode claim truth: %w", err)
		}
		return pathToTruth(path, m.TrueState), nil
	default:
		if m.Discrete == nil {
			return nil, fmt.Errorf("core: discrete model missing parameters")
		}
		path, _, err := m.Discrete.Viterbi(d.disc.QuantizeAll(acs))
		if err != nil {
			return nil, fmt.Errorf("decode claim truth: %w", err)
		}
		return pathToTruth(path, m.TrueState), nil
	}
}

// DecodeWithScratch is DecodeWith running on the caller's scratch: the
// quantized observations, the Viterbi lattice and the returned truth slice
// all live in sc, so a warmed scratch decodes with zero heap allocations.
// The result is valid until the next call using sc.
func (d *Decoder) DecodeWithScratch(sc *DecodeScratch, m *TrainedModel, acs []float64) ([]socialsensing.TruthValue, error) {
	if len(acs) == 0 {
		return nil, nil
	}
	if m == nil {
		return nil, fmt.Errorf("core: nil trained model")
	}
	var (
		path []int
		err  error
	)
	switch m.Emissions {
	case GaussianEmissions:
		if m.Gauss == nil {
			return nil, fmt.Errorf("core: gaussian model missing parameters")
		}
		path, _, err = m.Gauss.ViterbiWS(sc.ws, acs, sc.path)
	default:
		if m.Discrete == nil {
			return nil, fmt.Errorf("core: discrete model missing parameters")
		}
		sc.obs = d.disc.QuantizeAllInto(acs, sc.obs)
		path, _, err = m.Discrete.ViterbiWS(sc.ws, sc.obs, sc.path)
	}
	if err != nil {
		return nil, fmt.Errorf("decode claim truth: %w", err)
	}
	sc.path = path
	sc.truth = pathToTruthInto(path, m.TrueState, sc.truth)
	return sc.truth, nil
}

// DecodeInto is Decode (train fresh, then Viterbi) running entirely on the
// caller's scratch buffers; the returned truth slice is valid until the
// next call using sc.
func (d *Decoder) DecodeInto(sc *DecodeScratch, acs []float64) ([]socialsensing.TruthValue, error) {
	if len(acs) == 0 {
		return nil, nil
	}
	m, _, err := d.TrainWarmScratch(sc, acs, nil)
	if err != nil {
		return nil, err
	}
	return d.DecodeWithScratch(sc, m, acs)
}

func (d *Decoder) trainDiscreteWS(sc *DecodeScratch, acs []float64, prev *TrainedModel) (*TrainedModel, hmm.TrainResult, error) {
	sc.obs = d.disc.QuantizeAllInto(acs, sc.obs)
	seqs := sc.seqInt(sc.obs)
	cfg := d.cfg.Train
	var m *hmm.Discrete
	warm := prev != nil && prev.Emissions == DiscreteEmissions &&
		prev.Discrete != nil && prev.Discrete.Symbols() == d.disc.Symbols()
	if warm {
		m = prev.Discrete.Clone()
	} else {
		m = d.newDiscreteModel()
	}
	cfg.WarmStart = warm
	res, err := m.BaumWelchWS(sc.ws, seqs, cfg)
	if warm && (err != nil || !res.Converged) {
		// The warm seed led EM astray (or straight into an error); redo
		// the fit cold so a stale seed can never produce a worse model
		// than the paper's per-decode EM.
		m = d.newDiscreteModel()
		cfg.WarmStart = false
		res, err = m.BaumWelchWS(sc.ws, seqs, cfg)
	}
	if err != nil {
		return nil, res, fmt.Errorf("train claim model: %w", err)
	}
	// Re-anchor state semantics after EM: the True state is the one whose
	// emission mass sits higher in the (ordered) symbol alphabet.
	trueState := 1
	if emissionCenter(m.B[1]) < emissionCenter(m.B[0]) {
		trueState = 0
	}
	return &TrainedModel{Discrete: m, Emissions: DiscreteEmissions, TrueState: trueState}, res, nil
}

// newDiscreteModel builds the informative-prior 2-state model: symbol bins
// are ordered negative→positive, so the False state's emissions decay with
// bin index and the True state's grow.
func (d *Decoder) newDiscreteModel() *hmm.Discrete {
	sym := d.disc.Symbols()
	m := &hmm.Discrete{
		A:  [][]float64{{0.9, 0.1}, {0.1, 0.9}},
		B:  make([][]float64, 2),
		Pi: []float64{0.5, 0.5},
	}
	m.B[0] = make([]float64, sym)
	m.B[1] = make([]float64, sym)
	for k := 0; k < sym; k++ {
		// Linear ramps: False prefers low bins, True prefers high bins.
		m.B[0][k] = float64(sym - k)
		m.B[1][k] = float64(k + 1)
	}
	normalize(m.B[0])
	normalize(m.B[1])
	return m
}

func (d *Decoder) trainGaussianWS(sc *DecodeScratch, acs []float64, prev *TrainedModel) (*TrainedModel, hmm.TrainResult, error) {
	seqs := sc.seqFloat(acs)
	cfg := d.cfg.Train
	var m *hmm.Gaussian
	warm := prev != nil && prev.Emissions == GaussianEmissions && prev.Gauss != nil
	if warm {
		m = prev.Gauss.Clone()
	} else {
		var err error
		m, err = d.newGaussianModel(acs)
		if err != nil {
			return nil, hmm.TrainResult{}, err
		}
	}
	cfg.WarmStart = warm
	res, err := m.BaumWelchWS(sc.ws, seqs, cfg)
	if warm && (err != nil || !res.Converged) {
		m, err = d.newGaussianModel(acs)
		if err != nil {
			return nil, res, err
		}
		cfg.WarmStart = false
		res, err = m.BaumWelchWS(sc.ws, seqs, cfg)
	}
	if err != nil {
		return nil, res, fmt.Errorf("train claim model: %w", err)
	}
	trueState := 1
	if m.Mean[1] < m.Mean[0] {
		trueState = 0
	}
	return &TrainedModel{Gauss: m, Emissions: GaussianEmissions, TrueState: trueState}, res, nil
}

func (d *Decoder) newGaussianModel(acs []float64) (*hmm.Gaussian, error) {
	spread := maxAbs(acs)
	if spread == 0 {
		spread = 1
	}
	m, err := hmm.NewGaussian(
		[]float64{-spread / 2, spread / 2},
		[]float64{spread, spread},
	)
	if err != nil {
		return nil, fmt.Errorf("init gaussian model: %w", err)
	}
	m.A = [][]float64{{0.9, 0.1}, {0.1, 0.9}}
	return m, nil
}

func pathToTruth(path []int, trueState int) []socialsensing.TruthValue {
	out := make([]socialsensing.TruthValue, len(path))
	for i, s := range path {
		if s == trueState {
			out[i] = socialsensing.True
		} else {
			out[i] = socialsensing.False
		}
	}
	return out
}

// emissionCenter is the expected bin index under an emission distribution.
func emissionCenter(b []float64) float64 {
	c := 0.0
	for k, p := range b {
		c += float64(k) * p
	}
	return c
}

func normalize(row []float64) {
	sum := 0.0
	for _, v := range row {
		sum += v
	}
	if sum > 0 {
		for i := range row {
			row[i] /= sum
		}
	}
}

func maxAbs(vs []float64) float64 {
	m := 0.0
	for _, v := range vs {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}
