package core

import (
	"math"
	"testing"

	"github.com/social-sensing/sstd/internal/socialsensing"
)

func stepSeries(n, flip int, magnitude float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		if i < flip {
			s[i] = magnitude
		} else {
			s[i] = -magnitude
		}
	}
	return s
}

func TestPosteriorTracksEvidence(t *testing.T) {
	for _, kind := range []EmissionKind{DiscreteEmissions, GaussianEmissions} {
		cfg := DefaultDecoderConfig()
		cfg.Emissions = kind
		d, err := NewDecoder(cfg)
		if err != nil {
			t.Fatal(err)
		}
		series := stepSeries(40, 20, 4)
		post, err := d.Posterior(series)
		if err != nil {
			t.Fatalf("emissions %d: %v", kind, err)
		}
		if len(post) != 40 {
			t.Fatalf("posterior length = %d", len(post))
		}
		for i, p := range post {
			if p < 0 || p > 1 {
				t.Fatalf("posterior[%d] = %v outside [0,1]", i, p)
			}
			if i < 18 && p < 0.7 {
				t.Errorf("emissions %d: true-phase posterior[%d] = %.3f, want high", kind, i, p)
			}
			if i > 22 && p > 0.3 {
				t.Errorf("emissions %d: false-phase posterior[%d] = %.3f, want low", kind, i, p)
			}
		}
	}
}

func TestPosteriorConsistentWithViterbi(t *testing.T) {
	d, err := NewDecoder(DefaultDecoderConfig())
	if err != nil {
		t.Fatal(err)
	}
	series := stepSeries(60, 25, 3)
	post, err := d.Posterior(series)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := d.Decode(series)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i := range truth {
		hard := post[i] >= 0.5
		if hard == (truth[i] == socialsensing.True) {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(truth)); frac < 0.9 {
		t.Errorf("posterior/viterbi agreement = %.2f, want >= 0.9", frac)
	}
}

func TestPosteriorUncertainNearZeroEvidence(t *testing.T) {
	d, _ := NewDecoder(DefaultDecoderConfig())
	series := make([]float64, 30) // all zero: no evidence either way
	post, err := d.Posterior(series)
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for _, p := range post {
		mean += p
	}
	mean /= float64(len(post))
	if math.Abs(mean-0.5) > 0.25 {
		t.Errorf("no-evidence mean posterior = %.3f, want near 0.5", mean)
	}
}

func TestPosteriorEmpty(t *testing.T) {
	d, _ := NewDecoder(DefaultDecoderConfig())
	post, err := d.Posterior(nil)
	if err != nil || post != nil {
		t.Errorf("Posterior(nil) = %v, %v", post, err)
	}
}

func TestEnginePosteriorClaim(t *testing.T) {
	e := newTestEngine(t, 0)
	if err := synthClaim(e, "c1", 40, 20, 0.1, 3); err != nil {
		t.Fatal(err)
	}
	post, err := e.PosteriorClaim("c1")
	if err != nil {
		t.Fatal(err)
	}
	if len(post) != 40 {
		t.Fatalf("posterior length = %d", len(post))
	}
	if post[5] < 0.6 || post[35] > 0.4 {
		t.Errorf("posterior edges = %.3f / %.3f, want confident", post[5], post[35])
	}
	if _, err := e.PosteriorClaim("nope"); err == nil {
		t.Error("unknown claim accepted")
	}
}

func TestStreamingDecoderMatchesBatchOnStablePhases(t *testing.T) {
	cfg := DefaultDecoderConfig()
	sd, err := NewStreamingDecoder(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	series := stepSeries(50, 25, 4)
	var lastEstimates []socialsensing.TruthValue
	for _, v := range series {
		if _, err := sd.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	lastEstimates, err = sd.Timeline()
	if err != nil {
		t.Fatal(err)
	}
	if len(lastEstimates) != 50 {
		t.Fatalf("timeline length = %d", len(lastEstimates))
	}
	d, _ := NewDecoder(cfg)
	batch, err := d.Decode(series)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range batch {
		if batch[i] != lastEstimates[i] {
			diff++
		}
	}
	if diff > 4 {
		t.Errorf("streaming timeline differs from batch at %d/50 positions", diff)
	}
	if sd.Len() != 50 {
		t.Errorf("Len = %d", sd.Len())
	}
}

func TestStreamingDecoderLiveEstimateTracksFlip(t *testing.T) {
	sd, err := NewStreamingDecoder(DefaultDecoderConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	series := stepSeries(40, 20, 4)
	var live []socialsensing.TruthValue
	for _, v := range series {
		est, err := sd.Append(v)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, est)
	}
	// The live estimate should be True well inside the first phase and
	// False well inside the second; allow a couple of intervals around
	// the flip for detection latency.
	for i := 5; i < 18; i++ {
		if live[i] != socialsensing.True {
			t.Errorf("live[%d] = %v, want True", i, live[i])
		}
	}
	for i := 24; i < 40; i++ {
		if live[i] != socialsensing.False {
			t.Errorf("live[%d] = %v, want False", i, live[i])
		}
	}
}

func TestStreamingDecoderValidation(t *testing.T) {
	if _, err := NewStreamingDecoder(DefaultDecoderConfig(), 0); err == nil {
		t.Error("lag 0 accepted")
	}
	sd, _ := NewStreamingDecoder(DefaultDecoderConfig(), 3)
	tl, err := sd.Timeline()
	if err != nil || tl != nil {
		t.Errorf("empty Timeline = %v, %v", tl, err)
	}
}

func TestStreamingDecoderPinnedStable(t *testing.T) {
	// Once an interval falls out of the lag window its value must never
	// change, no matter what arrives later.
	sd, _ := NewStreamingDecoder(DefaultDecoderConfig(), 4)
	var snapshots [][]socialsensing.TruthValue
	series := stepSeries(30, 15, 4)
	for _, v := range series {
		if _, err := sd.Append(v); err != nil {
			t.Fatal(err)
		}
		tl, err := sd.Timeline()
		if err != nil {
			t.Fatal(err)
		}
		snapshots = append(snapshots, tl)
	}
	final := snapshots[len(snapshots)-1]
	for step, snap := range snapshots {
		pinnedUpTo := step + 1 - 2*4 // conservative: beyond both lag and context
		for i := 0; i < pinnedUpTo && i < len(snap); i++ {
			if snap[i] != final[i] {
				t.Fatalf("pinned interval %d changed after step %d: %v -> %v", i, step, snap[i], final[i])
			}
		}
	}
}
