package core

import (
	"math/rand"
	"testing"
	"time"

	"github.com/social-sensing/sstd/internal/socialsensing"
)

// synthClaim pushes reports for one claim whose ground truth flips at
// flipMinute: before it, most sources agree; after it, most disagree.
// Reports carry noise: a fraction of sources report the wrong value.
func synthClaim(e *Engine, claim socialsensing.ClaimID, minutes, flipMinute int, noise float64, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	for m := 0; m < minutes; m++ {
		truthTrue := m < flipMinute
		for k := 0; k < 8; k++ {
			correct := rng.Float64() >= noise
			att := socialsensing.Disagree
			if truthTrue == correct {
				att = socialsensing.Agree
			}
			r := socialsensing.Report{
				Source:       socialsensing.SourceID("s"),
				Claim:        claim,
				Timestamp:    origin().Add(time.Duration(m) * time.Minute),
				Attitude:     att,
				Uncertainty:  0.1 + 0.2*rng.Float64(),
				Independence: 0.9,
			}
			if err := e.Ingest(r); err != nil {
				return err
			}
		}
	}
	return nil
}

func newTestEngine(t *testing.T, par int) *Engine {
	t.Helper()
	cfg := DefaultConfig(origin())
	cfg.ACS.WindowIntervals = 3
	cfg.Parallelism = par
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineRecoversTruthFlip(t *testing.T) {
	e := newTestEngine(t, 0)
	const minutes, flip = 60, 30
	if err := synthClaim(e, "c1", minutes, flip, 0.15, 42); err != nil {
		t.Fatal(err)
	}
	est, err := e.DecodeClaim("c1")
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != minutes {
		t.Fatalf("got %d estimates, want %d", len(est), minutes)
	}
	correct := 0
	for _, es := range est {
		want := socialsensing.False
		if es.Interval < flip {
			want = socialsensing.True
		}
		if es.Value == want {
			correct++
		}
	}
	if acc := float64(correct) / float64(minutes); acc < 0.85 {
		t.Errorf("flip recovery accuracy = %.2f, want >= 0.85", acc)
	}
}

func TestEngineRobustToNoiseSpike(t *testing.T) {
	// A brief burst of misinformation (3 minutes of majority-wrong
	// reports inside a long true period) should not flip the decoded
	// truth for long: HMM stickiness must smooth it out compared to
	// per-interval voting.
	e := newTestEngine(t, 0)
	rng := rand.New(rand.NewSource(7))
	const minutes = 60
	for m := 0; m < minutes; m++ {
		noise := 0.1
		if m >= 30 && m < 33 {
			noise = 0.9 // misinformation burst
		}
		for k := 0; k < 6; k++ {
			att := socialsensing.Agree
			if rng.Float64() < noise {
				att = socialsensing.Disagree
			}
			r := socialsensing.Report{
				Source: "s", Claim: "c", Attitude: att,
				Timestamp:   origin().Add(time.Duration(m) * time.Minute),
				Uncertainty: 0.2, Independence: 0.9,
			}
			if err := e.Ingest(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	est, err := e.DecodeClaim("c")
	if err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for _, es := range est {
		if es.Value != socialsensing.True {
			wrong++
		}
	}
	if wrong > 8 {
		t.Errorf("noise spike flipped %d/%d intervals, want few", wrong, len(est))
	}
}

func TestEngineGaussianEmissions(t *testing.T) {
	cfg := DefaultConfig(origin())
	cfg.ACS.WindowIntervals = 3
	cfg.Decoder.Emissions = GaussianEmissions
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := synthClaim(e, "c1", 60, 30, 0.15, 11); err != nil {
		t.Fatal(err)
	}
	est, err := e.DecodeClaim("c1")
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, es := range est {
		want := socialsensing.False
		if es.Interval < 30 {
			want = socialsensing.True
		}
		if es.Value == want {
			correct++
		}
	}
	if acc := float64(correct) / 60.0; acc < 0.8 {
		t.Errorf("gaussian flip recovery = %.2f, want >= 0.8", acc)
	}
}

func TestEngineDecodeAllParallelMatchesSequential(t *testing.T) {
	seq := newTestEngine(t, 0)
	par := newTestEngine(t, 8)
	for i, e := range []*Engine{seq, par} {
		_ = i
		for c := 0; c < 6; c++ {
			claim := socialsensing.ClaimID(rune('a' + c))
			if err := synthClaim(e, claim, 40, 10+c*4, 0.1, int64(c)); err != nil {
				t.Fatal(err)
			}
		}
	}
	got1, err := seq.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	got2, err := par.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got1) != 6 || len(got2) != 6 {
		t.Fatalf("claim counts: %d vs %d", len(got1), len(got2))
	}
	for id, e1 := range got1 {
		e2 := got2[id]
		if len(e1) != len(e2) {
			t.Fatalf("claim %s lengths differ: %d vs %d", id, len(e1), len(e2))
		}
		for i := range e1 {
			if e1[i].Value != e2[i].Value {
				t.Fatalf("claim %s interval %d differs: %v vs %v", id, i, e1[i].Value, e2[i].Value)
			}
		}
	}
}

func TestEngineUnknownClaim(t *testing.T) {
	e := newTestEngine(t, 0)
	if _, err := e.DecodeClaim("nope"); err == nil {
		t.Error("unknown claim decoded without error")
	}
}

func TestEngineClaimsAndCounts(t *testing.T) {
	e := newTestEngine(t, 0)
	if err := synthClaim(e, "b", 5, 2, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := synthClaim(e, "a", 5, 2, 0, 1); err != nil {
		t.Fatal(err)
	}
	ids := e.Claims()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Errorf("Claims() = %v, want sorted [a b]", ids)
	}
	if got := e.ReportCount(); got != 80 {
		t.Errorf("ReportCount() = %d, want 80", got)
	}
	if s := e.ACSSeries("a"); len(s) != 5 {
		t.Errorf("ACSSeries(a) length = %d, want 5", len(s))
	}
	if s := e.ACSSeries("zzz"); s != nil {
		t.Errorf("ACSSeries(zzz) = %v, want nil", s)
	}
}

func TestEngineConfigValidation(t *testing.T) {
	if _, err := NewEngine(Config{ACS: DefaultACSConfig(), Decoder: DefaultDecoderConfig()}); err == nil {
		t.Error("zero origin accepted")
	}
	cfg := DefaultConfig(origin())
	cfg.ACS.Interval = -1
	if _, err := NewEngine(cfg); err == nil {
		t.Error("negative interval accepted")
	}
	cfg = DefaultConfig(origin())
	cfg.Decoder.Emissions = 0
	if _, err := NewEngine(cfg); err == nil {
		t.Error("invalid emission kind accepted")
	}
}

func TestTruthAt(t *testing.T) {
	est := []Estimate{
		{Interval: 0, Start: origin(), Value: socialsensing.True},
		{Interval: 1, Start: origin().Add(time.Minute), Value: socialsensing.False},
	}
	if v, ok := TruthAt(est, origin().Add(30*time.Second)); !ok || v != socialsensing.True {
		t.Errorf("TruthAt mid-first-interval = %v,%v", v, ok)
	}
	if v, ok := TruthAt(est, origin().Add(2*time.Minute)); !ok || v != socialsensing.False {
		t.Errorf("TruthAt after flip = %v,%v", v, ok)
	}
	if v, ok := TruthAt(est, origin().Add(-time.Hour)); !ok || v != socialsensing.True {
		t.Errorf("TruthAt before start = %v,%v", v, ok)
	}
	if _, ok := TruthAt(nil, origin()); ok {
		t.Error("TruthAt(nil) reported ok")
	}
}

func TestDecoderEmptySeries(t *testing.T) {
	d, err := NewDecoder(DefaultDecoderConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Decode(nil)
	if err != nil || got != nil {
		t.Errorf("Decode(nil) = %v, %v", got, err)
	}
}

func TestDecoderConstantPositiveSeries(t *testing.T) {
	d, _ := NewDecoder(DefaultDecoderConfig())
	series := make([]float64, 20)
	for i := range series {
		series[i] = 5
	}
	truth, err := d.Decode(series)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range truth {
		if v != socialsensing.True {
			t.Fatalf("interval %d decoded %v for strongly positive ACS", i, v)
		}
	}
}

func TestDecoderConstantNegativeSeries(t *testing.T) {
	d, _ := NewDecoder(DefaultDecoderConfig())
	series := make([]float64, 20)
	for i := range series {
		series[i] = -5
	}
	truth, err := d.Decode(series)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range truth {
		if v != socialsensing.False {
			t.Fatalf("interval %d decoded %v for strongly negative ACS", i, v)
		}
	}
}
