package core

import (
	"sync"

	"github.com/social-sensing/sstd/internal/hmm"
	"github.com/social-sensing/sstd/internal/socialsensing"
)

// DecodeScratch bundles every reusable buffer one decode of one claim
// needs: the HMM kernel workspace plus the quantized observation, Viterbi
// path, truth and ACS series slices. A warmed scratch makes the steady-
// state decode path (Engine.DecodeClaimInto, Decoder.DecodeWithScratch)
// allocation-free. Not safe for concurrent use; give each decoding
// goroutine its own, or let the scratch-less entry points borrow one from
// the internal pool.
type DecodeScratch struct {
	ws     *hmm.Workspace
	obs    []int
	path   []int
	truth  []socialsensing.TruthValue
	series []float64
	seqI   [][]int
	seqF   [][]float64
}

// NewDecodeScratch returns an empty scratch; buffers are allocated by the
// first decode and reused afterwards.
func NewDecodeScratch() *DecodeScratch {
	return &DecodeScratch{ws: hmm.NewWorkspace()}
}

// SetFlightParent tags the flight-recorder events of kernels running on
// this scratch with the owning tracer span ID (0 clears) — the dtm sets
// it to the decode span before finalize so deep-dive dumps nest EM
// phases under the job that ran them.
func (sc *DecodeScratch) SetFlightParent(parent int64) {
	sc.ws.SetFlightParent(parent)
}

var scratchPool = sync.Pool{New: func() any { return NewDecodeScratch() }}

func getScratch() *DecodeScratch   { return scratchPool.Get().(*DecodeScratch) }
func putScratch(sc *DecodeScratch) { scratchPool.Put(sc) }

// seqInt stages obs as the scratch's reusable single-sequence batch.
func (sc *DecodeScratch) seqInt(obs []int) [][]int {
	sc.seqI = append(sc.seqI[:0], obs)
	return sc.seqI
}

func (sc *DecodeScratch) seqFloat(obs []float64) [][]float64 {
	sc.seqF = append(sc.seqF[:0], obs)
	return sc.seqF
}

// pathToTruthInto is pathToTruth writing into dst, growing it only when
// capacity is insufficient.
func pathToTruthInto(path []int, trueState int, dst []socialsensing.TruthValue) []socialsensing.TruthValue {
	if cap(dst) < len(path) {
		dst = make([]socialsensing.TruthValue, len(path))
	} else {
		dst = dst[:len(path)]
	}
	for i, s := range path {
		if s == trueState {
			dst[i] = socialsensing.True
		} else {
			dst[i] = socialsensing.False
		}
	}
	return dst
}
