package core

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"github.com/social-sensing/sstd/internal/socialsensing"
)

func origin() time.Time { return time.Date(2015, 1, 7, 11, 0, 0, 0, time.UTC) }

func report(minute int, att socialsensing.Attitude) socialsensing.Report {
	return socialsensing.Report{
		Source:       "s",
		Claim:        "c",
		Timestamp:    origin().Add(time.Duration(minute) * time.Minute),
		Attitude:     att,
		Uncertainty:  0,
		Independence: 1,
	}
}

func TestACSConfigValidation(t *testing.T) {
	if _, err := NewACSAccumulator(ACSConfig{Interval: 0, WindowIntervals: 1}, origin()); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := NewACSAccumulator(ACSConfig{Interval: time.Minute, WindowIntervals: 0}, origin()); err == nil {
		t.Error("zero window accepted")
	}
}

func TestACSSeriesSlidingWindow(t *testing.T) {
	acc, err := NewACSAccumulator(ACSConfig{Interval: time.Minute, WindowIntervals: 2}, origin())
	if err != nil {
		t.Fatal(err)
	}
	// +1 at minute 0, +1 at minute 1, -1 at minute 3.
	acc.Add(report(0, socialsensing.Agree))
	acc.Add(report(1, socialsensing.Agree))
	acc.Add(report(3, socialsensing.Disagree))
	got := acc.Series()
	// Window of 2 intervals: t0: 1; t1: 1+1=2; t2: 1 (t0 dropped); t3: -1.
	want := []float64{1, 2, 1, -1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Series() = %v, want %v", got, want)
	}
}

func TestACSWindowOneIsPerInterval(t *testing.T) {
	acc, _ := NewACSAccumulator(ACSConfig{Interval: time.Minute, WindowIntervals: 1}, origin())
	acc.Add(report(0, socialsensing.Agree))
	acc.Add(report(0, socialsensing.Agree))
	acc.Add(report(2, socialsensing.Disagree))
	want := []float64{2, 0, -1}
	if got := acc.Series(); !reflect.DeepEqual(got, want) {
		t.Errorf("Series() = %v, want %v", got, want)
	}
}

func TestACSEarlyReportsClamped(t *testing.T) {
	acc, _ := NewACSAccumulator(ACSConfig{Interval: time.Minute, WindowIntervals: 1}, origin())
	acc.Add(report(-10, socialsensing.Agree))
	if got := acc.Series(); !reflect.DeepEqual(got, []float64{1}) {
		t.Errorf("Series() = %v, want [1]", got)
	}
}

func TestACSEmpty(t *testing.T) {
	acc, _ := NewACSAccumulator(DefaultACSConfig(), origin())
	if got := acc.Series(); got != nil {
		t.Errorf("empty Series() = %v, want nil", got)
	}
	if acc.Len() != 0 || acc.Count() != 0 {
		t.Errorf("empty accumulator Len=%d Count=%d", acc.Len(), acc.Count())
	}
}

func TestACSIntervalStart(t *testing.T) {
	acc, _ := NewACSAccumulator(ACSConfig{Interval: time.Minute, WindowIntervals: 1}, origin())
	if got := acc.IntervalStart(3); !got.Equal(origin().Add(3 * time.Minute)) {
		t.Errorf("IntervalStart(3) = %v", got)
	}
}

func TestACSWindowSumMatchesBruteForce(t *testing.T) {
	// Property: ACS at t equals the brute-force sum over the window.
	f := func(seed int64) bool {
		const n, window = 40, 5
		acc, err := NewACSAccumulator(ACSConfig{Interval: time.Minute, WindowIntervals: window}, origin())
		if err != nil {
			return false
		}
		perInterval := make([]float64, n)
		rng := seed
		next := func() int64 { rng = rng*6364136223846793005 + 1442695040888963407; return rng }
		for i := 0; i < n; i++ {
			k := int(uint64(next()) % 3)
			for j := 0; j < k; j++ {
				att := socialsensing.Agree
				if next()%2 == 0 {
					att = socialsensing.Disagree
				}
				acc.Add(report(i, att))
				perInterval[i] += float64(att)
			}
		}
		series := acc.Series()
		if len(series) == 0 {
			return true
		}
		for t2 := range series {
			want := 0.0
			for j := t2; j > t2-window && j >= 0; j-- {
				want += perInterval[j]
			}
			if math.Abs(series[t2]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiscretizerBins(t *testing.T) {
	d, err := NewSymmetricDiscretizer(0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Symbols() != 5 {
		t.Fatalf("Symbols() = %d, want 5", d.Symbols())
	}
	tests := []struct {
		v    float64
		want int
	}{
		{-10, 0}, {-2, 0}, {-1, 1}, {-0.5, 1}, {0, 2}, {0.5, 2}, {1, 3}, {2, 3}, {5, 4},
	}
	for _, tt := range tests {
		if got := d.Quantize(tt.v); got != tt.want {
			t.Errorf("Quantize(%v) = %d, want %d", tt.v, got, tt.want)
		}
	}
}

func TestDiscretizerMonotone(t *testing.T) {
	d, _ := NewSymmetricDiscretizer(0.5, 2)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return d.Quantize(a) <= d.Quantize(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiscretizerValidation(t *testing.T) {
	if _, err := NewDiscretizer(nil); err == nil {
		t.Error("empty edges accepted")
	}
	if _, err := NewDiscretizer([]float64{1, 1}); err == nil {
		t.Error("non-ascending edges accepted")
	}
	if _, err := NewSymmetricDiscretizer(); err == nil {
		t.Error("no thresholds accepted")
	}
	if _, err := NewSymmetricDiscretizer(-1); err == nil {
		t.Error("negative threshold accepted")
	}
}

func TestQuantizeAll(t *testing.T) {
	d, _ := NewSymmetricDiscretizer(1)
	got := d.QuantizeAll([]float64{-5, 0, 5})
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("QuantizeAll = %v", got)
	}
}
