package core

import (
	"fmt"

	"github.com/social-sensing/sstd/internal/socialsensing"
)

// Posterior returns, for each interval of the ACS series, the smoothed
// probability that the claim is true — P(state = True | full sequence) via
// forward-backward — rather than the hard Viterbi decision. Posteriors are
// what downstream consumers that combine evidence across claims (see the
// claimdep package) or need calibrated confidence work with. An empty
// series yields nil.
func (d *Decoder) Posterior(acs []float64) ([]float64, error) {
	if len(acs) == 0 {
		return nil, nil
	}
	switch d.cfg.Emissions {
	case GaussianEmissions:
		return d.posteriorGaussian(acs)
	default:
		return d.posteriorDiscrete(acs)
	}
}

func (d *Decoder) posteriorDiscrete(acs []float64) ([]float64, error) {
	sc := getScratch()
	defer putScratch(sc)
	tm, _, err := d.trainDiscreteWS(sc, acs, nil)
	if err != nil {
		return nil, err
	}
	m := tm.Discrete
	gamma, err := m.PosteriorWS(sc.ws, sc.obs, nil)
	if err != nil {
		return nil, fmt.Errorf("posterior: %w", err)
	}
	n := m.States()
	out := make([]float64, len(acs))
	for t := range out {
		out[t] = gamma[t*n+tm.TrueState]
	}
	return out, nil
}

func (d *Decoder) posteriorGaussian(acs []float64) ([]float64, error) {
	sc := getScratch()
	defer putScratch(sc)
	tm, _, err := d.trainGaussianWS(sc, acs, nil)
	if err != nil {
		return nil, err
	}
	m := tm.Gauss
	ts := tm.TrueState
	alpha, scale, _, err := m.ForwardWS(sc.ws, acs)
	if err != nil {
		return nil, fmt.Errorf("posterior forward: %w", err)
	}
	beta, err := m.BackwardWS(sc.ws, acs, scale)
	if err != nil {
		return nil, fmt.Errorf("posterior backward: %w", err)
	}
	n := m.States()
	out := make([]float64, len(acs))
	for t := range acs {
		num := alpha[t*n+ts] * beta[t*n+ts]
		den := alpha[t*n] * beta[t*n]
		for i := 1; i < n; i++ {
			den += alpha[t*n+i] * beta[t*n+i]
		}
		if den > 0 {
			out[t] = num / den
		}
	}
	return out, nil
}

// PosteriorClaim computes the smoothed truth posterior for one claim's
// current ACS series.
func (e *Engine) PosteriorClaim(id socialsensing.ClaimID) ([]float64, error) {
	e.mu.RLock()
	st, ok := e.claims[id]
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown claim %q", id)
	}
	return e.decoder.Posterior(st.acc.Series())
}
