package core

import (
	"fmt"

	"github.com/social-sensing/sstd/internal/hmm"
	"github.com/social-sensing/sstd/internal/socialsensing"
)

// Posterior returns, for each interval of the ACS series, the smoothed
// probability that the claim is true — P(state = True | full sequence) via
// forward-backward — rather than the hard Viterbi decision. Posteriors are
// what downstream consumers that combine evidence across claims (see the
// claimdep package) or need calibrated confidence work with. An empty
// series yields nil.
func (d *Decoder) Posterior(acs []float64) ([]float64, error) {
	if len(acs) == 0 {
		return nil, nil
	}
	switch d.cfg.Emissions {
	case GaussianEmissions:
		return d.posteriorGaussian(acs)
	default:
		return d.posteriorDiscrete(acs)
	}
}

func (d *Decoder) posteriorDiscrete(acs []float64) ([]float64, error) {
	obs := d.disc.QuantizeAll(acs)
	m := d.newDiscreteModel()
	if _, err := m.BaumWelch([][]int{obs}, d.cfg.Train); err != nil {
		return nil, fmt.Errorf("train claim model: %w", err)
	}
	trueState := 1
	if emissionCenter(m.B[1]) < emissionCenter(m.B[0]) {
		trueState = 0
	}
	gamma, err := m.Posterior(obs)
	if err != nil {
		return nil, fmt.Errorf("posterior: %w", err)
	}
	out := make([]float64, len(gamma))
	for t, row := range gamma {
		out[t] = row[trueState]
	}
	return out, nil
}

func (d *Decoder) posteriorGaussian(acs []float64) ([]float64, error) {
	spread := maxAbs(acs)
	if spread == 0 {
		spread = 1
	}
	m, err := hmm.NewGaussian([]float64{-spread / 2, spread / 2}, []float64{spread, spread})
	if err != nil {
		return nil, fmt.Errorf("init gaussian model: %w", err)
	}
	m.A = [][]float64{{0.9, 0.1}, {0.1, 0.9}}
	if _, err := m.BaumWelch([][]float64{acs}, d.cfg.Train); err != nil {
		return nil, fmt.Errorf("train claim model: %w", err)
	}
	trueState := 1
	if m.Mean[1] < m.Mean[0] {
		trueState = 0
	}
	alpha, scale, _, err := m.Forward(acs)
	if err != nil {
		return nil, fmt.Errorf("posterior forward: %w", err)
	}
	beta, err := m.Backward(acs, scale)
	if err != nil {
		return nil, fmt.Errorf("posterior backward: %w", err)
	}
	out := make([]float64, len(acs))
	for t := range acs {
		num := alpha[t][trueState] * beta[t][trueState]
		den := alpha[t][0]*beta[t][0] + alpha[t][1]*beta[t][1]
		if den > 0 {
			out[t] = num / den
		}
	}
	return out, nil
}

// PosteriorClaim computes the smoothed truth posterior for one claim's
// current ACS series.
func (e *Engine) PosteriorClaim(id socialsensing.ClaimID) ([]float64, error) {
	e.mu.RLock()
	st, ok := e.claims[id]
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown claim %q", id)
	}
	return e.decoder.Posterior(st.acc.Series())
}
