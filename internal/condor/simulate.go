package condor

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// VirtualTask is one task in a virtual-time simulation: Work abstract work
// units (for SSTD, the number of reports a TD task must process).
type VirtualTask struct {
	JobID string
	Work  float64
}

// CostModel maps work to execution time, following Eq. 10 of the paper:
// ET = TI + D * theta, divided by the executing node's speed factor.
type CostModel struct {
	// InitTime is TI, the fixed task start-up cost.
	InitTime time.Duration
	// PerUnit is theta1, the time per work unit on a speed-1.0 node.
	PerUnit time.Duration
	// Dispatch is the master-side serial cost per task (scheduling plus
	// data transfer). It does not parallelize — the master hands out one
	// task at a time — and is what makes speedup improve with data size:
	// small tasks are dispatch-bound, large tasks computation-bound
	// (the effect visible in the paper's Fig. 7).
	Dispatch time.Duration
}

// Duration returns the execution time of a task with the given work on a
// node with the given speed.
func (cm CostModel) Duration(work, speed float64) time.Duration {
	if speed <= 0 {
		speed = 1
	}
	return time.Duration(float64(cm.InitTime)/speed + work*float64(cm.PerUnit)/speed)
}

// TaskTrace records where and when one task ran in virtual time.
type TaskTrace struct {
	Task  VirtualTask
	Slot  Slot
	Start time.Duration
	End   time.Duration
	// Evicted marks an aborted attempt (the slot's owner reclaimed the
	// machine mid-run); the task was retried elsewhere.
	Evicted bool
}

// SimResult summarizes a virtual execution.
type SimResult struct {
	Makespan time.Duration
	// JobCompletion is the virtual time each job's last task finished.
	JobCompletion map[string]time.Duration
	Traces        []TaskTrace
	// EvictedAttempts counts task attempts lost to slot reclamation.
	EvictedAttempts int
}

// workerState orders workers by next availability for list scheduling.
type workerState struct {
	slot    Slot
	freeAt  time.Duration
	ordinal int // tie-break for determinism
}

type workerHeap []*workerState

func (h workerHeap) Len() int { return len(h) }
func (h workerHeap) Less(i, j int) bool {
	if h[i].freeAt != h[j].freeAt {
		return h[i].freeAt < h[j].freeAt
	}
	return h[i].ordinal < h[j].ordinal
}
func (h workerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *workerHeap) Push(x interface{}) { *h = append(*h, x.(*workerState)) }
func (h *workerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Simulate runs list scheduling of tasks (in order) over the slots in
// virtual time: each task goes to the earliest-available worker, finishing
// after CostModel.Duration scaled by the worker's node speed. This models
// the Work Queue pull discipline: idle workers grab the next task.
func Simulate(tasks []VirtualTask, slots []Slot, cm CostModel) (SimResult, error) {
	if len(slots) == 0 {
		return SimResult{}, errors.New("condor: simulation needs at least one slot")
	}
	for i, t := range tasks {
		if t.Work < 0 {
			return SimResult{}, fmt.Errorf("condor: task %d has negative work", i)
		}
	}
	h := make(workerHeap, len(slots))
	for i, s := range slots {
		h[i] = &workerState{slot: s, ordinal: i}
	}
	heap.Init(&h)

	res := SimResult{JobCompletion: make(map[string]time.Duration)}
	res.Traces = make([]TaskTrace, 0, len(tasks))
	var masterFreeAt time.Duration
	for _, t := range tasks {
		w := heap.Pop(&h).(*workerState)
		// The master dispatches tasks one at a time; a task cannot start
		// before its dispatch completes.
		masterFreeAt += cm.Dispatch
		start := w.freeAt
		if masterFreeAt > start {
			start = masterFreeAt
		}
		end := start + cm.Duration(t.Work, w.slot.Speed)
		w.freeAt = end
		heap.Push(&h, w)
		res.Traces = append(res.Traces, TaskTrace{Task: t, Slot: w.slot, Start: start, End: end})
		if end > res.Makespan {
			res.Makespan = end
		}
		if end > res.JobCompletion[t.JobID] {
			res.JobCompletion[t.JobID] = end
		}
	}
	return res, nil
}

// Speedup returns T(1)/T(n): the serial virtual makespan divided by the
// parallel one — the metric of the paper's Fig. 7.
func Speedup(tasks []VirtualTask, slots []Slot, cm CostModel) (float64, error) {
	if len(slots) == 0 {
		return 0, errors.New("condor: need slots")
	}
	serial, err := Simulate(tasks, slots[:1], cm)
	if err != nil {
		return 0, err
	}
	parallel, err := Simulate(tasks, slots, cm)
	if err != nil {
		return 0, err
	}
	if parallel.Makespan == 0 {
		return 1, nil
	}
	return float64(serial.Makespan) / float64(parallel.Makespan), nil
}
