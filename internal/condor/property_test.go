package condor

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestClaimReleaseConservesResources: any interleaving of claims and
// releases returns the pool to full capacity once everything is released.
func TestClaimReleaseConservesResources(t *testing.T) {
	f := func(seed int64, ops []byte) bool {
		c, err := NewHeterogeneousCluster(10, seed)
		if err != nil {
			return false
		}
		total := c.TotalCores()
		var held []Slot
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			if op%2 == 0 || len(held) == 0 {
				s, err := c.Claim(Resources{Cores: 1 + int(op%3)})
				if err == nil {
					held = append(held, s)
				}
				continue
			}
			i := rng.Intn(len(held))
			if err := c.Release(held[i]); err != nil {
				return false
			}
			held = append(held[:i], held[i+1:]...)
		}
		for _, s := range held {
			if err := c.Release(s); err != nil {
				return false
			}
		}
		return c.FreeCores() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSimulateInvariants: for random task sets, the makespan bounds hold:
// at least total-work/capacity (no slot can exceed speed), at most the
// serial time, and every job completion <= makespan.
func TestSimulateInvariants(t *testing.T) {
	cm := CostModel{InitTime: time.Millisecond, PerUnit: 100 * time.Microsecond, Dispatch: 50 * time.Microsecond}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		tasks := make([]VirtualTask, n)
		for i := range tasks {
			tasks[i] = VirtualTask{JobID: string(rune('a' + i%5)), Work: float64(rng.Intn(1000))}
		}
		workers := 1 + rng.Intn(8)
		res, err := Simulate(tasks, unitSlots(workers), cm)
		if err != nil {
			return false
		}
		serial, err := Simulate(tasks, unitSlots(1), cm)
		if err != nil {
			return false
		}
		if res.Makespan > serial.Makespan {
			return false
		}
		for _, jc := range res.JobCompletion {
			if jc > res.Makespan {
				return false
			}
		}
		// Traces are consistent: per slot, executions do not overlap.
		bySlot := make(map[int][]TaskTrace)
		for _, tr := range res.Traces {
			bySlot[tr.Slot.ID] = append(bySlot[tr.Slot.ID], tr)
		}
		for _, trs := range bySlot {
			for i := 1; i < len(trs); i++ {
				if trs[i].Start < trs[i-1].End {
					return false
				}
			}
		}
		return len(res.Traces) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
