package condor

import (
	"errors"
	"testing"
	"time"
)

func TestSimulateEvictionsNoEvictionsMatchesSimulate(t *testing.T) {
	cm := CostModel{InitTime: 10 * time.Millisecond, PerUnit: time.Millisecond, Dispatch: time.Millisecond}
	tasks := mkTasks(20, 50)
	slots := unitSlots(4)
	plain, err := Simulate(tasks, slots, cm)
	if err != nil {
		t.Fatal(err)
	}
	withEv, err := SimulateEvictions(tasks, slots, cm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Makespan != withEv.Makespan {
		t.Errorf("makespan differs without evictions: %v vs %v", plain.Makespan, withEv.Makespan)
	}
	if withEv.EvictedAttempts != 0 {
		t.Errorf("phantom evictions: %d", withEv.EvictedAttempts)
	}
}

func TestSimulateEvictionsRetriesLostWork(t *testing.T) {
	cm := CostModel{PerUnit: time.Millisecond}
	tasks := []VirtualTask{{JobID: "j", Work: 100}} // 100 ms on speed 1
	slots := []Slot{{ID: 1, Node: "a", Speed: 1}, {ID: 2, Node: "b", Speed: 1}}
	// Slot 1 is reclaimed 50ms in: the task restarts on slot 2.
	res, err := SimulateEvictions(tasks, slots, cm, []Eviction{{SlotID: 1, At: 50 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	if res.EvictedAttempts != 1 {
		t.Fatalf("evicted attempts = %d, want 1", res.EvictedAttempts)
	}
	if len(res.Traces) != 2 {
		t.Fatalf("traces = %d, want 2 (abort + retry)", len(res.Traces))
	}
	if !res.Traces[0].Evicted || res.Traces[0].Slot.ID != 1 {
		t.Errorf("first trace should be the evicted attempt: %+v", res.Traces[0])
	}
	if res.Traces[1].Evicted || res.Traces[1].Slot.ID != 2 {
		t.Errorf("second trace should be the clean retry: %+v", res.Traces[1])
	}
	if res.Makespan != 100*time.Millisecond {
		t.Errorf("makespan = %v, want 100ms (retry from t=0 on slot 2)", res.Makespan)
	}
}

func TestSimulateEvictionsSlowdown(t *testing.T) {
	// Churn must never make things faster.
	cm := CostModel{InitTime: 5 * time.Millisecond, PerUnit: time.Millisecond, Dispatch: time.Millisecond}
	tasks := mkTasks(40, 30)
	slots := unitSlots(8)
	clean, err := SimulateEvictions(tasks, slots, cm, nil)
	if err != nil {
		t.Fatal(err)
	}
	churned, err := SimulateEvictions(tasks, slots, cm, PoolChurn(slots, 3, 40*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if churned.Makespan < clean.Makespan {
		t.Errorf("churned makespan %v < clean %v", churned.Makespan, clean.Makespan)
	}
}

func TestSimulateEvictionsAllSlotsGone(t *testing.T) {
	cm := CostModel{PerUnit: time.Millisecond}
	tasks := mkTasks(10, 1000)
	slots := unitSlots(2)
	evictions := []Eviction{
		{SlotID: 1, At: 10 * time.Millisecond},
		{SlotID: 2, At: 10 * time.Millisecond},
	}
	_, err := SimulateEvictions(tasks, slots, cm, evictions)
	if !errors.Is(err, ErrAllSlotsEvicted) {
		t.Errorf("err = %v, want ErrAllSlotsEvicted", err)
	}
}

func TestSimulateEvictionsIdleReclaim(t *testing.T) {
	// A slot reclaimed before any work starts simply never runs a task.
	cm := CostModel{PerUnit: time.Millisecond}
	tasks := mkTasks(6, 20)
	slots := unitSlots(3)
	res, err := SimulateEvictions(tasks, slots, cm, []Eviction{{SlotID: 2, At: 0}})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Traces {
		if tr.Slot.ID == 2 && !tr.Evicted {
			t.Errorf("reclaimed-at-zero slot ran a task: %+v", tr)
		}
	}
}

func TestSimulateEvictionsValidation(t *testing.T) {
	cm := CostModel{}
	if _, err := SimulateEvictions(mkTasks(1, 1), nil, cm, nil); err == nil {
		t.Error("no slots accepted")
	}
	if _, err := SimulateEvictions([]VirtualTask{{Work: -1}}, unitSlots(1), cm, nil); err == nil {
		t.Error("negative work accepted")
	}
}

func TestPoolChurn(t *testing.T) {
	slots := unitSlots(9)
	ev := PoolChurn(slots, 3, time.Second)
	if len(ev) != 3 {
		t.Fatalf("evictions = %d, want 3", len(ev))
	}
	for i, e := range ev {
		if want := time.Duration(i+1) * time.Second; e.At != want {
			t.Errorf("eviction %d at %v, want %v", i, e.At, want)
		}
	}
	if got := PoolChurn(slots, 0, time.Second); got != nil {
		t.Errorf("churn 0 = %v, want nil", got)
	}
}
