package condor

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func twoNodeCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := NewCluster([]Node{
		{Name: "big", Capacity: Resources{Cores: 8, MemoryMB: 16384, DiskMB: 100000}, SpeedFactor: 2},
		{Name: "small", Capacity: Resources{Cores: 2, MemoryMB: 4096, DiskMB: 50000}, SpeedFactor: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(nil); err == nil {
		t.Error("empty cluster accepted")
	}
	if _, err := NewCluster([]Node{{Name: "", SpeedFactor: 1}}); err == nil {
		t.Error("unnamed node accepted")
	}
	if _, err := NewCluster([]Node{
		{Name: "a", SpeedFactor: 1}, {Name: "a", SpeedFactor: 1},
	}); err == nil {
		t.Error("duplicate node accepted")
	}
	if _, err := NewCluster([]Node{{Name: "a", SpeedFactor: 0}}); err == nil {
		t.Error("zero speed accepted")
	}
}

func TestClaimBestFit(t *testing.T) {
	c := twoNodeCluster(t)
	// A 2-core claim fits "small" exactly (tightest fit).
	s, err := c.Claim(Resources{Cores: 2, MemoryMB: 1024, DiskMB: 100})
	if err != nil {
		t.Fatal(err)
	}
	if s.Node != "small" {
		t.Errorf("2-core claim placed on %s, want small (best fit)", s.Node)
	}
	// A 4-core claim only fits "big".
	s2, err := c.Claim(Resources{Cores: 4, MemoryMB: 1024, DiskMB: 100})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Node != "big" {
		t.Errorf("4-core claim placed on %s, want big", s2.Node)
	}
	if s2.Speed != 2 {
		t.Errorf("slot speed = %v, want node speed 2", s2.Speed)
	}
}

func TestClaimRespectsConstraints(t *testing.T) {
	c := twoNodeCluster(t)
	// Exhaust all 10 cores.
	slots := c.ClaimN(20, Resources{Cores: 1})
	if len(slots) != 10 {
		t.Fatalf("claimed %d cores, want 10", len(slots))
	}
	if _, err := c.Claim(Resources{Cores: 1}); !errors.Is(err, ErrNoMatch) {
		t.Errorf("over-claim error = %v, want ErrNoMatch", err)
	}
	if c.FreeCores() != 0 {
		t.Errorf("FreeCores = %d, want 0", c.FreeCores())
	}
	// Memory constraint binds even with free cores.
	c2 := twoNodeCluster(t)
	if _, err := c2.Claim(Resources{Cores: 1, MemoryMB: 1 << 30}); !errors.Is(err, ErrNoMatch) {
		t.Errorf("huge memory claim error = %v, want ErrNoMatch", err)
	}
}

func TestReleaseRestoresCapacity(t *testing.T) {
	c := twoNodeCluster(t)
	s, err := c.Claim(Resources{Cores: 2, MemoryMB: 2048, DiskMB: 1000})
	if err != nil {
		t.Fatal(err)
	}
	before := c.FreeCores()
	if err := c.Release(s); err != nil {
		t.Fatal(err)
	}
	if got := c.FreeCores(); got != before+2 {
		t.Errorf("FreeCores after release = %d, want %d", got, before+2)
	}
	if err := c.Release(s); err == nil {
		t.Error("double release accepted")
	}
}

func TestClaimReleaseConcurrent(t *testing.T) {
	c, err := NewHeterogeneousCluster(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := c.TotalCores()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s, err := c.Claim(Resources{Cores: 1})
				if err != nil {
					continue
				}
				if err := c.Release(s); err != nil {
					t.Errorf("release: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := c.FreeCores(); got != total {
		t.Errorf("cores leaked: free %d, total %d", got, total)
	}
}

func TestHeterogeneousClusterDeterministic(t *testing.T) {
	a, err := NewHeterogeneousCluster(30, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewHeterogeneousCluster(30, 7)
	an, bn := a.Nodes(), b.Nodes()
	for i := range an {
		if an[i] != bn[i] {
			t.Fatalf("node %d differs: %+v vs %+v", i, an[i], bn[i])
		}
	}
	// Heterogeneity: at least two distinct speeds and core counts.
	speeds := make(map[float64]bool)
	cores := make(map[int]bool)
	for _, n := range an {
		speeds[n.SpeedFactor] = true
		cores[n.Capacity.Cores] = true
	}
	if len(speeds) < 2 || len(cores) < 2 {
		t.Error("cluster is homogeneous")
	}
}

func mkTasks(n int, work float64) []VirtualTask {
	tasks := make([]VirtualTask, n)
	for i := range tasks {
		tasks[i] = VirtualTask{JobID: fmt.Sprintf("job%d", i%4), Work: work}
	}
	return tasks
}

func unitSlots(n int) []Slot {
	slots := make([]Slot, n)
	for i := range slots {
		slots[i] = Slot{ID: i + 1, Node: fmt.Sprintf("n%d", i), Speed: 1}
	}
	return slots
}

func TestSimulateSingleWorkerSerial(t *testing.T) {
	cm := CostModel{InitTime: time.Second, PerUnit: time.Millisecond}
	tasks := mkTasks(10, 1000)
	res, err := Simulate(tasks, unitSlots(1), cm)
	if err != nil {
		t.Fatal(err)
	}
	want := time.Duration(10) * (time.Second + 1000*time.Millisecond)
	if res.Makespan != want {
		t.Errorf("serial makespan = %v, want %v", res.Makespan, want)
	}
	if len(res.Traces) != 10 {
		t.Errorf("traces = %d", len(res.Traces))
	}
	// Tasks execute back to back.
	for i := 1; i < len(res.Traces); i++ {
		if res.Traces[i].Start != res.Traces[i-1].End {
			t.Errorf("gap between tasks %d and %d", i-1, i)
		}
	}
}

func TestSimulatePerfectParallelism(t *testing.T) {
	cm := CostModel{PerUnit: time.Millisecond}
	tasks := mkTasks(8, 100)
	res, err := Simulate(tasks, unitSlots(8), cm)
	if err != nil {
		t.Fatal(err)
	}
	if want := 100 * time.Millisecond; res.Makespan != want {
		t.Errorf("parallel makespan = %v, want %v", res.Makespan, want)
	}
}

func TestSimulateFasterNodeFinishesMore(t *testing.T) {
	cm := CostModel{PerUnit: time.Millisecond}
	slots := []Slot{
		{ID: 1, Node: "slow", Speed: 1},
		{ID: 2, Node: "fast", Speed: 4},
	}
	res, err := Simulate(mkTasks(50, 100), slots, cm)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, tr := range res.Traces {
		counts[tr.Slot.Node]++
	}
	if counts["fast"] <= counts["slow"] {
		t.Errorf("fast node ran %d tasks, slow %d; want fast > slow", counts["fast"], counts["slow"])
	}
}

func TestSpeedupGrowsWithWorkersAndData(t *testing.T) {
	cm := CostModel{InitTime: 50 * time.Millisecond, PerUnit: time.Microsecond, Dispatch: 20 * time.Millisecond}
	small := mkTasks(64, 1_000)
	large := mkTasks(64, 100_000)
	s4small, err := Speedup(small, unitSlots(4), cm)
	if err != nil {
		t.Fatal(err)
	}
	s4large, _ := Speedup(large, unitSlots(4), cm)
	s16large, _ := Speedup(large, unitSlots(16), cm)
	if s4large <= s4small {
		t.Errorf("speedup should improve with data size: %v (large) vs %v (small)", s4large, s4small)
	}
	if s16large <= s4large {
		t.Errorf("speedup should improve with workers: 16w=%v vs 4w=%v", s16large, s4large)
	}
	if s16large > 16 {
		t.Errorf("speedup %v exceeds ideal 16", s16large)
	}
	if s4large > 4 {
		t.Errorf("speedup %v exceeds ideal 4", s4large)
	}
}

func TestSimulateJobCompletionTimes(t *testing.T) {
	cm := CostModel{PerUnit: time.Millisecond}
	tasks := []VirtualTask{
		{JobID: "a", Work: 10},
		{JobID: "b", Work: 1000},
	}
	res, err := Simulate(tasks, unitSlots(2), cm)
	if err != nil {
		t.Fatal(err)
	}
	if res.JobCompletion["a"] >= res.JobCompletion["b"] {
		t.Errorf("job a (%v) should finish before b (%v)", res.JobCompletion["a"], res.JobCompletion["b"])
	}
	if res.Makespan != res.JobCompletion["b"] {
		t.Error("makespan should equal latest job completion")
	}
}

func TestSimulateErrors(t *testing.T) {
	cm := CostModel{}
	if _, err := Simulate(mkTasks(1, 1), nil, cm); err == nil {
		t.Error("no slots accepted")
	}
	if _, err := Simulate([]VirtualTask{{JobID: "j", Work: -1}}, unitSlots(1), cm); err == nil {
		t.Error("negative work accepted")
	}
	if _, err := Speedup(mkTasks(1, 1), nil, cm); err == nil {
		t.Error("Speedup without slots accepted")
	}
}

func TestCostModelZeroSpeedDefaults(t *testing.T) {
	cm := CostModel{PerUnit: time.Millisecond}
	if got := cm.Duration(100, 0); got != 100*time.Millisecond {
		t.Errorf("Duration with zero speed = %v", got)
	}
}
