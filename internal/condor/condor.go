// Package condor simulates the HTCondor pool the paper deploys SSTD on
// (§IV-A1): a cluster of heterogeneous machines with per-node resource
// constraints (cores, memory, disk) and differing speeds, a matchmaker
// that places worker requests onto machines, and a virtual-time executor
// used to study scheduling behaviour at scales (hundreds of workers,
// millions of tweets) that exceed the test machine — the substitution for
// Notre Dame's 1,900-machine pool documented in DESIGN.md.
package condor

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Resources describes capacity or a request (the paper's RC_k constraint
// vector).
type Resources struct {
	Cores    int
	MemoryMB int
	DiskMB   int
}

// Fits reports whether r can accommodate req.
func (r Resources) Fits(req Resources) bool {
	return r.Cores >= req.Cores && r.MemoryMB >= req.MemoryMB && r.DiskMB >= req.DiskMB
}

// sub subtracts req (caller checks Fits).
func (r Resources) sub(req Resources) Resources {
	return Resources{
		Cores:    r.Cores - req.Cores,
		MemoryMB: r.MemoryMB - req.MemoryMB,
		DiskMB:   r.DiskMB - req.DiskMB,
	}
}

func (r Resources) add(req Resources) Resources {
	return Resources{
		Cores:    r.Cores + req.Cores,
		MemoryMB: r.MemoryMB + req.MemoryMB,
		DiskMB:   r.DiskMB + req.DiskMB,
	}
}

// Node is one machine in the pool.
type Node struct {
	Name     string
	Capacity Resources
	// SpeedFactor scales execution speed: 1.0 is the reference machine,
	// 2.0 finishes work twice as fast. Captures pool heterogeneity.
	SpeedFactor float64
}

// Slot is a claimed allocation on a node, returned by the matchmaker.
type Slot struct {
	ID    int
	Node  string
	Req   Resources
	Speed float64
}

// Cluster tracks nodes and outstanding claims. It is safe for concurrent
// use.
type Cluster struct {
	mu     sync.Mutex
	nodes  []Node
	free   map[string]Resources
	slots  map[int]Slot
	nextID int
}

// ErrNoMatch is returned when no node can satisfy a claim.
var ErrNoMatch = errors.New("condor: no node satisfies the resource request")

// NewCluster builds a cluster from the node list.
func NewCluster(nodes []Node) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, errors.New("condor: cluster needs at least one node")
	}
	c := &Cluster{
		nodes: append([]Node(nil), nodes...),
		free:  make(map[string]Resources, len(nodes)),
		slots: make(map[int]Slot),
	}
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n.Name == "" {
			return nil, errors.New("condor: node without a name")
		}
		if seen[n.Name] {
			return nil, fmt.Errorf("condor: duplicate node %q", n.Name)
		}
		if n.SpeedFactor <= 0 {
			return nil, fmt.Errorf("condor: node %q speed factor %v must be positive", n.Name, n.SpeedFactor)
		}
		seen[n.Name] = true
		c.free[n.Name] = n.Capacity
	}
	return c, nil
}

// NewHeterogeneousCluster builds a deterministic pseudo-random pool of n
// machines mixing workstation-class (1-4 cores, slow) and server-class
// (8-32 cores, fast) nodes, mirroring the desktop/classroom/server mix of
// the Notre Dame pool.
func NewHeterogeneousCluster(n int, seed int64) (*Cluster, error) {
	if n < 1 {
		return nil, errors.New("condor: need at least one node")
	}
	rng := rand.New(rand.NewSource(seed))
	nodes := make([]Node, n)
	for i := range nodes {
		if rng.Float64() < 0.7 {
			// Workstation: idle desktop or classroom machine.
			nodes[i] = Node{
				Name:        fmt.Sprintf("ws-%03d", i),
				Capacity:    Resources{Cores: 1 + rng.Intn(4), MemoryMB: 2048 + 2048*rng.Intn(3), DiskMB: 50_000},
				SpeedFactor: 0.6 + 0.4*rng.Float64(),
			}
		} else {
			// Server-class machine.
			nodes[i] = Node{
				Name:        fmt.Sprintf("srv-%03d", i),
				Capacity:    Resources{Cores: 8 + 8*rng.Intn(4), MemoryMB: 16_384 + 16_384*rng.Intn(4), DiskMB: 500_000},
				SpeedFactor: 1.0 + rng.Float64(),
			}
		}
	}
	return NewCluster(nodes)
}

// Claim places a resource request on the best-fitting node (the one whose
// remaining capacity after placement is smallest, to preserve large slots)
// preferring faster machines among equal fits.
func (c *Cluster) Claim(req Resources) (Slot, error) {
	if req.Cores <= 0 {
		req.Cores = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	bestIdx := -1
	bestLeftCores := 1 << 30
	bestSpeed := 0.0
	for i, n := range c.nodes {
		free := c.free[n.Name]
		if !free.Fits(req) {
			continue
		}
		left := free.Cores - req.Cores
		if left < bestLeftCores || (left == bestLeftCores && n.SpeedFactor > bestSpeed) {
			bestIdx = i
			bestLeftCores = left
			bestSpeed = n.SpeedFactor
		}
	}
	if bestIdx == -1 {
		return Slot{}, ErrNoMatch
	}
	node := c.nodes[bestIdx]
	c.free[node.Name] = c.free[node.Name].sub(req)
	c.nextID++
	s := Slot{ID: c.nextID, Node: node.Name, Req: req, Speed: node.SpeedFactor}
	c.slots[s.ID] = s
	return s, nil
}

// ClaimN claims up to n single-core slots and returns those granted.
func (c *Cluster) ClaimN(n int, req Resources) []Slot {
	out := make([]Slot, 0, n)
	for i := 0; i < n; i++ {
		s, err := c.Claim(req)
		if err != nil {
			break
		}
		out = append(out, s)
	}
	return out
}

// Release returns a slot's resources to its node.
func (c *Cluster) Release(s Slot) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	stored, ok := c.slots[s.ID]
	if !ok {
		return fmt.Errorf("condor: slot %d not claimed", s.ID)
	}
	delete(c.slots, s.ID)
	c.free[stored.Node] = c.free[stored.Node].add(stored.Req)
	return nil
}

// FreeCores reports total unclaimed cores across the pool.
func (c *Cluster) FreeCores() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, free := range c.free {
		total += free.Cores
	}
	return total
}

// TotalCores reports pool capacity.
func (c *Cluster) TotalCores() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, n := range c.nodes {
		total += n.Capacity.Cores
	}
	return total
}

// Nodes returns a copy of the node list sorted by name.
func (c *Cluster) Nodes() []Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]Node(nil), c.nodes...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
