package condor

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"time"
)

// Eviction models HTCondor's cycle scavenging: desktop machines join the
// pool while idle and are reclaimed the moment their owner returns. A
// task running on a reclaimed slot is killed and must restart from
// scratch elsewhere; the slot leaves the pool.
type Eviction struct {
	// SlotID identifies the evicted slot.
	SlotID int
	// At is the virtual time the owner reclaims the machine.
	At time.Duration
}

// ErrAllSlotsEvicted is returned when tasks remain but every slot has been
// reclaimed.
var ErrAllSlotsEvicted = errors.New("condor: all slots evicted with tasks pending")

// SimulateEvictions runs list scheduling like Simulate but with slot
// reclamation: a task whose execution window covers its slot's eviction
// time is aborted at that instant (work lost), the slot leaves the pool,
// and the task is retried on another slot. Aborted attempts appear in the
// trace with Evicted set.
func SimulateEvictions(tasks []VirtualTask, slots []Slot, cm CostModel, evictions []Eviction) (SimResult, error) {
	if len(slots) == 0 {
		return SimResult{}, errors.New("condor: simulation needs at least one slot")
	}
	for i, t := range tasks {
		if t.Work < 0 {
			return SimResult{}, fmt.Errorf("condor: task %d has negative work", i)
		}
	}
	// Earliest eviction per slot.
	evictAt := make(map[int]time.Duration, len(evictions))
	for _, e := range evictions {
		if cur, ok := evictAt[e.SlotID]; !ok || e.At < cur {
			evictAt[e.SlotID] = e.At
		}
	}

	h := make(workerHeap, len(slots))
	for i, s := range slots {
		h[i] = &workerState{slot: s, ordinal: i}
	}
	heap.Init(&h)

	res := SimResult{JobCompletion: make(map[string]time.Duration)}
	queue := append([]VirtualTask(nil), tasks...)
	var masterFreeAt time.Duration
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		// Find a worker that is not already reclaimed by the time it
		// could start.
		var w *workerState
		for h.Len() > 0 {
			cand := heap.Pop(&h).(*workerState)
			if ev, ok := evictAt[cand.slot.ID]; ok && ev <= cand.freeAt {
				// Owner returned while the slot was idle: it leaves the
				// pool silently.
				continue
			}
			w = cand
			break
		}
		if w == nil {
			return res, ErrAllSlotsEvicted
		}
		masterFreeAt += cm.Dispatch
		start := w.freeAt
		if masterFreeAt > start {
			start = masterFreeAt
		}
		end := start + cm.Duration(t.Work, w.slot.Speed)
		if ev, ok := evictAt[w.slot.ID]; ok && ev < end {
			if ev <= start {
				// Reclaimed before the task began: requeue, drop slot.
				queue = append([]VirtualTask{t}, queue...)
				continue
			}
			// Aborted mid-run: work lost, task retried, slot gone.
			res.Traces = append(res.Traces, TaskTrace{
				Task: t, Slot: w.slot, Start: start, End: ev, Evicted: true,
			})
			res.EvictedAttempts++
			queue = append([]VirtualTask{t}, queue...)
			continue
		}
		w.freeAt = end
		heap.Push(&h, w)
		res.Traces = append(res.Traces, TaskTrace{Task: t, Slot: w.slot, Start: start, End: end})
		if end > res.Makespan {
			res.Makespan = end
		}
		if end > res.JobCompletion[t.JobID] {
			res.JobCompletion[t.JobID] = end
		}
	}
	return res, nil
}

// PoolChurn deterministically synthesizes evictions for a slot set: every
// churnth slot (by sorted ID order) is reclaimed at a stagger of the given
// period — a simple stand-in for workday owner-return patterns.
func PoolChurn(slots []Slot, churn int, period time.Duration) []Eviction {
	if churn < 1 {
		return nil
	}
	ids := make([]int, len(slots))
	for i, s := range slots {
		ids[i] = s.ID
	}
	sort.Ints(ids)
	var out []Eviction
	k := 0
	for i, id := range ids {
		if (i+1)%churn == 0 {
			k++
			out = append(out, Eviction{SlotID: id, At: time.Duration(k) * period})
		}
	}
	return out
}
