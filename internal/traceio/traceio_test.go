package traceio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"github.com/social-sensing/sstd/internal/tracegen"
)

func TestWriteReadRoundTrip(t *testing.T) {
	g, err := tracegen.New(tracegen.ParisShooting(), 5)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := g.Generate(0.001)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || len(got.Reports) != len(tr.Reports) ||
		len(got.Sources) != len(tr.Sources) || len(got.Claims) != len(tr.Claims) {
		t.Errorf("round trip mismatch: %+v vs %+v", got.Summarize(), tr.Summarize())
	}
	for i := range tr.Reports {
		if !got.Reports[i].Timestamp.Equal(tr.Reports[i].Timestamp) ||
			got.Reports[i].Source != tr.Reports[i].Source {
			t.Fatalf("report %d differs", i)
		}
	}
}

func TestReadRejectsInvalid(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json")); err == nil {
		t.Error("bad JSON accepted")
	}
	// Valid JSON but invalid trace (no name).
	if _, err := Read(strings.NewReader(`{"Name":""}`)); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestSaveLoadPlainAndGzip(t *testing.T) {
	g, _ := tracegen.New(tracegen.BostonBombing(), 2)
	tr, err := g.Generate(0.0005)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, name := range []string{"trace.json", "trace.json.gz"} {
		path := filepath.Join(dir, name)
		if err := Save(path, tr); err != nil {
			t.Fatalf("save %s: %v", name, err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		if got.Summarize() != tr.Summarize() {
			t.Errorf("%s: %+v vs %+v", name, got.Summarize(), tr.Summarize())
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/trace.json"); err == nil {
		t.Error("missing file accepted")
	}
}
