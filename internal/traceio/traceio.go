// Package traceio persists social sensing traces as (optionally gzipped)
// JSON so generated workloads can be shared between the CLI tools.
package traceio

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/social-sensing/sstd/internal/socialsensing"
)

// Write serializes the trace as JSON to w.
func Write(w io.Writer, tr *socialsensing.Trace) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(tr); err != nil {
		return fmt.Errorf("traceio: encode trace: %w", err)
	}
	return nil
}

// Read deserializes a trace from r and validates it.
func Read(r io.Reader) (*socialsensing.Trace, error) {
	var tr socialsensing.Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("traceio: decode trace: %w", err)
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("traceio: %w", err)
	}
	return &tr, nil
}

// Save writes the trace to path; a ".gz" suffix enables gzip compression.
func Save(path string, tr *socialsensing.Trace) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("traceio: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("traceio: close %s: %w", path, cerr)
		}
	}()
	if strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(f)
		if err := Write(gz, tr); err != nil {
			return err
		}
		if err := gz.Close(); err != nil {
			return fmt.Errorf("traceio: flush gzip: %w", err)
		}
		return nil
	}
	return Write(f, tr)
}

// Load reads a trace from path; a ".gz" suffix enables gzip decompression.
func Load(path string) (*socialsensing.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("traceio: open %s: %w", path, err)
	}
	defer func() { _ = f.Close() }()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("traceio: gunzip %s: %w", path, err)
		}
		defer func() { _ = gz.Close() }()
		r = gz
	}
	return Read(r)
}
