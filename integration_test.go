package sstd_test

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/social-sensing/sstd"
	"github.com/social-sensing/sstd/internal/baselines"
	"github.com/social-sensing/sstd/internal/core"
	"github.com/social-sensing/sstd/internal/evalmetrics"
	"github.com/social-sensing/sstd/internal/socialsensing"
	"github.com/social-sensing/sstd/internal/stream"
	"github.com/social-sensing/sstd/internal/tracegen"
	"github.com/social-sensing/sstd/internal/workqueue"
)

// TestFullRawTextPipeline drives the complete system the way the paper's
// deployment would: synthetic tweets -> keyword filter + online clustering
// (claims) -> semantic scoring (contribution scores) -> HMM engine
// (decoded truth), and checks the decoded timelines against ground truth
// through the cluster/claim correspondence.
func TestFullRawTextPipeline(t *testing.T) {
	prof := sstd.ParisShootingProfile()
	gen, err := sstd.NewTraceGenerator(prof, 5)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := gen.Generate(0.005)
	if err != nil {
		t.Fatal(err)
	}

	clusterCfg := sstd.DefaultClusterConfig()
	clusterCfg.Keywords = prof.Keywords
	clusterer := sstd.NewClusterer(clusterCfg)
	scorer := sstd.NewScorer()

	engCfg := sstd.DefaultConfig(trace.Start)
	engCfg.ACS.Interval = trace.Duration() / 80
	engine, err := sstd.NewEngine(engCfg)
	if err != nil {
		t.Fatal(err)
	}

	// Track which true claim dominates each discovered cluster so the
	// decoded timeline can be scored against real ground truth.
	clusterToClaim := make(map[sstd.ClaimID]map[sstd.ClaimID]int)
	kept := 0
	for _, raw := range trace.Reports {
		clusterID, ok := clusterer.Assign(raw.Text, raw.Timestamp)
		if !ok {
			continue
		}
		kept++
		cid := sstd.ClaimID(clusterID)
		report := scorer.ScorePost(sstd.Post{
			Source: raw.Source, Claim: cid, Timestamp: raw.Timestamp, Text: raw.Text,
		})
		if err := engine.Ingest(report); err != nil {
			t.Fatal(err)
		}
		if clusterToClaim[cid] == nil {
			clusterToClaim[cid] = make(map[sstd.ClaimID]int)
		}
		clusterToClaim[cid][raw.Claim]++
	}
	if kept < len(trace.Reports)/2 {
		t.Fatalf("keyword filter kept only %d/%d posts", kept, len(trace.Reports))
	}

	decoded, err := engine.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}

	correct, total := 0, 0
	for cid, counts := range clusterToClaim {
		// Majority true claim for the cluster, and its share (cluster
		// purity): only score reasonably pure clusters.
		var majority sstd.ClaimID
		best, sum := 0, 0
		for claim, n := range counts {
			sum += n
			if n > best {
				best, majority = n, claim
			}
		}
		if sum < 30 || float64(best)/float64(sum) < 0.8 {
			continue
		}
		est := decoded[cid]
		if len(est) == 0 {
			continue
		}
		for _, e := range est {
			truth, ok := trace.TruthAt(majority, e.Start)
			if !ok {
				continue
			}
			total++
			if e.Value == truth {
				correct++
			}
		}
	}
	if total == 0 {
		t.Fatal("no pure clusters to score")
	}
	if acc := float64(correct) / float64(total); acc < 0.7 {
		t.Errorf("end-to-end raw-text accuracy = %.3f over %d samples, want >= 0.7", acc, total)
	}
}

// TestDistributedMatchesLocalOverTCP runs the identical TD workload
// through the in-process engine and through a real TCP master with two
// worker connections, checking the decoded truth agrees.
func TestDistributedMatchesLocalOverTCP(t *testing.T) {
	gen, err := tracegen.New(tracegen.CollegeFootball(), 3)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gen.Generate(0.002)
	if err != nil {
		t.Fatal(err)
	}
	width := tr.Duration() / 60

	// Local decode.
	cfg := core.DefaultConfig(tr.Start)
	cfg.ACS.Interval = width
	eng, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestAll(tr.Reports); err != nil {
		t.Fatal(err)
	}
	local, err := eng.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}

	// Distributed: master over TCP; workers compute partial ACS sums
	// exactly like cmd/sstd-worker.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	master := workqueue.NewMaster(workqueue.MasterConfig{Seed: 1, ResultBuffer: 128})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = master.Serve(ctx, l) }()
	type payload struct {
		Claim    socialsensing.ClaimID  `json:"claim"`
		Origin   time.Time              `json:"origin"`
		Interval time.Duration          `json:"interval_ns"`
		Reports  []socialsensing.Report `json:"reports"`
	}
	type output struct {
		Sums map[int]float64 `json:"sums"`
	}
	exec := func(_ context.Context, raw []byte) ([]byte, error) {
		var p payload
		if err := jsonUnmarshal(raw, &p); err != nil {
			return nil, err
		}
		out := output{Sums: make(map[int]float64)}
		for _, r := range p.Reports {
			idx := 0
			if r.Timestamp.After(p.Origin) {
				idx = int(r.Timestamp.Sub(p.Origin) / p.Interval)
			}
			out.Sums[idx] += r.ContributionScore()
		}
		return jsonMarshal(out)
	}
	for i := 0; i < 2; i++ {
		go func(i int) {
			w := &workqueue.Worker{ID: fmt.Sprintf("itw-%d", i), Exec: exec}
			_ = w.Dial(ctx, l.Addr().String())
		}(i)
	}

	byClaim := tr.ReportsByClaim()
	jobs := 0
	for claim, reports := range byClaim {
		half := len(reports) / 2
		for i, chunk := range [][]socialsensing.Report{reports[:half], reports[half:]} {
			raw, err := jsonMarshal(payload{Claim: claim, Origin: tr.Start, Interval: width, Reports: chunk})
			if err != nil {
				t.Fatal(err)
			}
			if err := master.Submit(workqueue.Task{
				ID: fmt.Sprintf("%s/%d", claim, i), JobID: string(claim), Payload: raw,
			}); err != nil {
				t.Fatal(err)
			}
		}
		jobs++
	}

	sums := make(map[string]map[int]float64)
	done := make(map[string]int)
	finished := 0
	timeout := time.After(30 * time.Second)
	for finished < jobs {
		select {
		case res := <-master.Results():
			if res.Err != "" {
				t.Fatalf("task %s: %s", res.TaskID, res.Err)
			}
			var out output
			if err := jsonUnmarshal(res.Output, &out); err != nil {
				t.Fatal(err)
			}
			if sums[res.JobID] == nil {
				sums[res.JobID] = make(map[int]float64)
			}
			for idx, s := range out.Sums {
				sums[res.JobID][idx] += s
			}
			done[res.JobID]++
			if done[res.JobID] == 2 {
				finished++
			}
		case <-timeout:
			t.Fatalf("timed out with %d/%d jobs", finished, jobs)
		}
	}

	dec, err := core.NewDecoder(core.DefaultDecoderConfig())
	if err != nil {
		t.Fatal(err)
	}
	for claim, claimSums := range sums {
		maxIdx := 0
		for idx := range claimSums {
			if idx > maxIdx {
				maxIdx = idx
			}
		}
		dense := make([]float64, maxIdx+1)
		for idx, s := range claimSums {
			dense[idx] = s
		}
		window := cfg.ACS.WindowIntervals
		series := make([]float64, len(dense))
		acc := 0.0
		for i := range dense {
			acc += dense[i]
			if i >= window {
				acc -= dense[i-window]
			}
			series[i] = acc
		}
		truth, err := dec.Decode(series)
		if err != nil {
			t.Fatal(err)
		}
		localEst := local[socialsensing.ClaimID(claim)]
		if len(localEst) != len(truth) {
			t.Fatalf("claim %s length mismatch: %d vs %d", claim, len(localEst), len(truth))
		}
		for i := range truth {
			if truth[i] != localEst[i].Value {
				t.Fatalf("claim %s interval %d: distributed %v vs local %v", claim, i, truth[i], localEst[i].Value)
			}
		}
	}
}

// TestSSTDBeatsBaselinesEndToEnd is the headline integration check: on a
// freshly generated trace, SSTD's dynamic accuracy exceeds every baseline.
func TestSSTDBeatsBaselinesEndToEnd(t *testing.T) {
	gen, err := tracegen.New(tracegen.BostonBombing(), 99)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gen.Generate(0.01)
	if err != nil {
		t.Fatal(err)
	}
	width := tr.Duration() / 80

	cfg := core.DefaultConfig(tr.Start)
	cfg.ACS.Interval = width
	eng, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestAll(tr.Reports); err != nil {
		t.Fatal(err)
	}
	decoded, err := eng.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	sstdConf, err := evalmetrics.EvaluateDynamic(tr, func(c socialsensing.ClaimID, at time.Time) (socialsensing.TruthValue, bool) {
		return core.TruthAt(decoded[c], at)
	}, width)
	if err != nil {
		t.Fatal(err)
	}

	ds := baselines.BuildDataset(tr.Reports)
	ests := []baselines.Estimator{
		baselines.NewTruthFinder(), baselines.NewRTD(), baselines.NewCATD(),
		baselines.NewInvest(), baselines.NewThreeEstimates(),
		baselines.NewAvgLog(), baselines.NewPooledInvest(),
	}
	for _, est := range ests {
		verdicts := est.Estimate(ds)
		conf, err := evalmetrics.EvaluateDynamic(tr, func(c socialsensing.ClaimID, _ time.Time) (socialsensing.TruthValue, bool) {
			v, ok := verdicts[c]
			return v, ok
		}, width)
		if err != nil {
			t.Fatal(err)
		}
		if conf.Accuracy() >= sstdConf.Accuracy() {
			t.Errorf("%s accuracy %.3f >= SSTD %.3f", est.Name(), conf.Accuracy(), sstdConf.Accuracy())
		}
	}

	// And the streaming baseline.
	batches, err := stream.SplitByInterval(tr, width)
	if err != nil {
		t.Fatal(err)
	}
	d := baselines.NewDynaTD()
	type snap struct {
		at  time.Time
		est map[socialsensing.ClaimID]socialsensing.TruthValue
	}
	var history []snap
	for _, b := range batches {
		cur := d.ProcessInterval(b.Reports)
		cp := make(map[socialsensing.ClaimID]socialsensing.TruthValue, len(cur))
		for k, v := range cur {
			cp[k] = v
		}
		history = append(history, snap{at: b.Start, est: cp})
	}
	dynaConf, err := evalmetrics.EvaluateDynamic(tr, func(c socialsensing.ClaimID, at time.Time) (socialsensing.TruthValue, bool) {
		var cur socialsensing.TruthValue
		ok := false
		for _, s := range history {
			if s.at.After(at) {
				break
			}
			if v, have := s.est[c]; have {
				cur, ok = v, true
			}
		}
		return cur, ok
	}, width)
	if err != nil {
		t.Fatal(err)
	}
	if dynaConf.Accuracy() >= sstdConf.Accuracy() {
		t.Errorf("DynaTD accuracy %.3f >= SSTD %.3f", dynaConf.Accuracy(), sstdConf.Accuracy())
	}
}
