package sstd_test

import "encoding/json"

// jsonMarshal / jsonUnmarshal keep the integration test bodies readable.
func jsonMarshal(v interface{}) ([]byte, error)     { return json.Marshal(v) }
func jsonUnmarshal(raw []byte, v interface{}) error { return json.Unmarshal(raw, v) }
