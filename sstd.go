// Package sstd is the public API of the Scalable Streaming Truth Discovery
// library, a reproduction of Zhang et al., "Towards Scalable and Dynamic
// Social Sensing Using A Distributed Computing Framework" (ICDCS 2017).
//
// Social sensing applications collect observations ("claims") about the
// physical world from unvetted human sources. SSTD answers, in real time
// and at scale, the truth discovery question: which claims are true right
// now, given that source reliability is unknown and the ground truth
// itself evolves?
//
// Three layers are exposed:
//
//   - The streaming engine (Engine): per-claim Hidden-Markov-Model truth
//     decoding over Aggregated Contribution Score sequences — the paper's
//     core algorithm, runnable in a single process.
//   - The distributed manager (Manager): the same pipeline split into Work
//     Queue-style tasks executed by an elastic worker pool with
//     PID-feedback deadline control.
//   - The preprocessing pipeline (Scorer and the nlp package underneath):
//     raw posts to scored reports (attitude, uncertainty, independence).
//
// A minimal single-process session:
//
//	cfg := sstd.DefaultConfig(streamStart)
//	eng, err := sstd.NewEngine(cfg)
//	// feed reports as they arrive...
//	err = eng.Ingest(report)
//	// decode a claim's truth timeline on demand:
//	estimates, err := eng.DecodeClaim("osu-shooting")
//
// See the examples directory for complete programs and DESIGN.md for how
// each internal package maps to the paper.
package sstd

import (
	"io"
	"net/http"
	"time"

	"github.com/social-sensing/sstd/internal/claimdep"
	"github.com/social-sensing/sstd/internal/clustering"
	"github.com/social-sensing/sstd/internal/contrib"
	"github.com/social-sensing/sstd/internal/core"
	"github.com/social-sensing/sstd/internal/dtm"
	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/pipeline"
	"github.com/social-sensing/sstd/internal/socialsensing"
	"github.com/social-sensing/sstd/internal/sourcerel"
	"github.com/social-sensing/sstd/internal/tracegen"
	"github.com/social-sensing/sstd/internal/workqueue"
)

// Data model re-exports. These aliases make the shared social sensing
// types usable without importing internal packages.
type (
	// Report is one scored observation by a source on a claim.
	Report = socialsensing.Report
	// Claim is a statement whose truth evolves over time.
	Claim = socialsensing.Claim
	// Source is a report producer with hidden reliability.
	Source = socialsensing.Source
	// SourceID identifies a source.
	SourceID = socialsensing.SourceID
	// ClaimID identifies a claim.
	ClaimID = socialsensing.ClaimID
	// TruthValue is a binary claim state at an instant.
	TruthValue = socialsensing.TruthValue
	// Attitude is a report's stance toward its claim.
	Attitude = socialsensing.Attitude
	// Trace is a complete dataset with ground truth labels.
	Trace = socialsensing.Trace
)

// Truth values and attitudes.
const (
	True  = socialsensing.True
	False = socialsensing.False

	Agree    = socialsensing.Agree
	Disagree = socialsensing.Disagree
	NoReport = socialsensing.NoReport
)

// Engine types.
type (
	// Engine is the in-process streaming truth discovery engine.
	Engine = core.Engine
	// Config parameterizes an Engine.
	Config = core.Config
	// ACSConfig controls the Aggregated Contribution Score computation.
	ACSConfig = core.ACSConfig
	// DecoderConfig controls the per-claim HMM decoder.
	DecoderConfig = core.DecoderConfig
	// Estimate is one decoded (claim, interval, truth) triple.
	Estimate = core.Estimate
	// StreamingDecoder decodes one claim incrementally with fixed-lag
	// smoothing.
	StreamingDecoder = core.StreamingDecoder
)

// Source reliability diagnostics.
type (
	// SourceEstimate is one source's reliability estimate with a Wilson
	// confidence interval.
	SourceEstimate = sourcerel.Estimate
	// SourceRelConfig tunes reliability estimation.
	SourceRelConfig = sourcerel.Config
)

// Claim dependency types (the §VII correlation extension).
type (
	// DependencyGraph is an estimated claim correlation structure.
	DependencyGraph = claimdep.Graph
	// DependencyConfig tunes dependency estimation and smoothing.
	DependencyConfig = claimdep.Config
	// ClaimCorrelation is one pairwise dependency.
	ClaimCorrelation = claimdep.Correlation
)

// Distributed types.
type (
	// Manager is the distributed Dynamic Task Manager.
	Manager = dtm.Manager
	// ManagerConfig parameterizes a Manager.
	ManagerConfig = dtm.Config
	// JobResult is the outcome of one distributed TD job.
	JobResult = dtm.JobResult
	// WorkerHealth is one worker's row in the master's health registry:
	// liveness state, last-seen time, throughput estimates and straggler
	// flag. Manager.ClusterHealth returns one per known worker.
	WorkerHealth = workqueue.WorkerHealth
	// WorkerState is a worker's liveness classification (alive, suspect
	// or dead).
	WorkerState = workqueue.WorkerState
)

// Worker liveness states.
const (
	WorkerAlive   = workqueue.WorkerAlive
	WorkerSuspect = workqueue.WorkerSuspect
	WorkerDead    = workqueue.WorkerDead
)

// Composed ingestion pipeline.
type (
	// Pipeline routes raw posts through keyword filtering, claim
	// clustering, semantic scoring and the truth discovery engine.
	Pipeline = pipeline.Pipeline
	// PipelineConfig assembles a Pipeline.
	PipelineConfig = pipeline.Config
	// RawPost is an unprocessed observation for the Pipeline.
	RawPost = pipeline.RawPost
)

// Preprocessing types.
type (
	// Scorer converts raw posts into scored reports.
	Scorer = contrib.Scorer
	// Post is a raw observation before semantic scoring.
	Post = contrib.Post
	// Clusterer groups raw texts into claims online (the paper's claim
	// generator: streaming K-means over Jaccard distance).
	Clusterer = clustering.Clusterer
	// ClusterConfig tunes the claim clusterer.
	ClusterConfig = clustering.Config
)

// Trace generation types (synthetic workloads shaped after the paper's
// datasets).
type (
	// TraceProfile describes a synthetic event.
	TraceProfile = tracegen.Profile
	// TraceGenerator synthesizes traces for a profile.
	TraceGenerator = tracegen.Generator
)

// Telemetry types. A nil registry / tracer / recorder disables the
// corresponding instrumentation at ~zero cost, so telemetry is pay-for-use.
type (
	// MetricsRegistry holds counters, gauges and latency histograms for
	// every instrumented layer (engine, work queue, DTM, pipeline).
	MetricsRegistry = obs.Registry
	// SpanTracer records per-job / per-task timeline spans into a ring
	// buffer, exportable as JSON or Chrome trace_event format.
	SpanTracer = obs.Tracer
	// ControlRecorder captures the PID control loop tick by tick.
	ControlRecorder = obs.ControlRecorder
	// ControlSample is one job's slice of one PID tick.
	ControlSample = obs.ControlSample
	// WorkerSample is one worker's observed-vs-predicted throughput row
	// recorded by the control loop each tick.
	WorkerSample = obs.WorkerSample
	// Logger is a leveled, structured JSON-lines logger whose entries
	// carry trace/span/worker/task correlation fields; a ring buffer of
	// recent entries backs the /logs endpoint.
	Logger = obs.Logger
	// LogLevel is a Logger severity threshold.
	LogLevel = obs.LogLevel
	// LogField is one structured key/value on a log entry.
	LogField = obs.Field
)

// Log levels.
const (
	LogDebug = obs.LevelDebug
	LogInfo  = obs.LevelInfo
	LogWarn  = obs.LevelWarn
	LogError = obs.LevelError
)

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewSpanTracer creates a span tracer keeping the most recent capacity
// spans (<= 0 uses the default of 4096).
func NewSpanTracer(capacity int) *SpanTracer { return obs.NewTracer(capacity) }

// NewControlRecorder creates a control-loop recorder keeping at most max
// samples (<= 0 uses a generous default).
func NewControlRecorder(max int) *ControlRecorder { return obs.NewControlRecorder(max) }

// NewLogger creates a structured logger writing JSON lines at or above
// min to w (nil w = ring buffer only), keeping the most recent capacity
// entries for /logs (<= 0 uses the default of 1024).
func NewLogger(w io.Writer, min LogLevel, capacity int) *Logger {
	return obs.NewLogger(w, min, capacity)
}

// TelemetryHandler serves /metrics (Prometheus text, ?format=json for
// JSON), /trace (Chrome trace_event), /logs (recent structured log
// entries) and /debug/pprof/* for the given telemetry sinks; any may be
// nil.
func TelemetryHandler(reg *MetricsRegistry, tr *SpanTracer, lg *Logger) http.Handler {
	return obs.Handler(reg, tr, lg)
}

// WriteTelemetryArtifact writes a JSON file with the final metrics
// snapshot and control-loop time series — the reproducible artifact of a
// -telemetry run.
func WriteTelemetryArtifact(path string, reg *MetricsRegistry, rec *ControlRecorder) error {
	return obs.WriteArtifactFile(path, reg, rec)
}

// NewEngine builds a streaming truth discovery engine.
func NewEngine(cfg Config) (*Engine, error) { return core.NewEngine(cfg) }

// DefaultConfig returns the paper's default engine setup with the interval
// grid anchored at origin.
func DefaultConfig(origin time.Time) Config { return core.DefaultConfig(origin) }

// NewManager builds the distributed Dynamic Task Manager.
func NewManager(cfg ManagerConfig) (*Manager, error) { return dtm.New(cfg) }

// DefaultManagerConfig returns a working distributed configuration.
func DefaultManagerConfig(origin time.Time) ManagerConfig { return dtm.DefaultConfig(origin) }

// NewScorer builds the default preprocessing pipeline (emergency-event
// attitude lexicon, built-in hedge classifier, retweet-based independence).
func NewScorer() *Scorer { return contrib.NewScorer() }

// NewPipeline composes filter + clusterer + scorer + engine behind one
// Process(post) call.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) { return pipeline.New(cfg) }

// NewClusterer builds an online claim clusterer.
func NewClusterer(cfg ClusterConfig) *Clusterer { return clustering.New(cfg) }

// DefaultClusterConfig returns clustering thresholds tuned for
// tweet-length text.
func DefaultClusterConfig() ClusterConfig { return clustering.DefaultConfig() }

// NewStreamingDecoder wraps the per-claim HMM decoder with fixed-lag
// smoothing for bounded-cost live decoding.
func NewStreamingDecoder(cfg DecoderConfig, lag int) (*StreamingDecoder, error) {
	return core.NewStreamingDecoder(cfg, lag)
}

// EstimateDependencies builds a claim correlation graph from per-claim
// evidence (ACS) series; use Graph.Smooth on posteriors from
// Engine.PosteriorClaim to let correlated claims reinforce each other.
func EstimateDependencies(series map[ClaimID][]float64, cfg DependencyConfig) (*DependencyGraph, error) {
	return claimdep.EstimateGraph(series, cfg)
}

// DefaultDependencyConfig returns the default dependency-model settings.
func DefaultDependencyConfig() DependencyConfig { return claimdep.DefaultConfig() }

// RankSources estimates per-source reliability against decoded truth
// (most reliable first, ranked by interval lower bound). The truth
// function is typically built from Engine.DecodeClaim results via
// TruthAt.
func RankSources(reports []Report, truth func(ClaimID, time.Time) (TruthValue, bool), cfg SourceRelConfig) ([]SourceEstimate, error) {
	return sourcerel.Ranked(reports, truth, cfg)
}

// DefaultSourceRelConfig returns 95% Wilson intervals over all sources.
func DefaultSourceRelConfig() SourceRelConfig { return sourcerel.DefaultConfig() }

// NewTraceGenerator builds a synthetic trace generator for a profile.
func NewTraceGenerator(prof TraceProfile, seed int64) (*TraceGenerator, error) {
	return tracegen.New(prof, seed)
}

// BostonBombingProfile returns the synthetic profile shaped after the
// paper's Boston Bombing trace.
func BostonBombingProfile() TraceProfile { return tracegen.BostonBombing() }

// ParisShootingProfile returns the synthetic profile shaped after the
// paper's Paris Shooting trace.
func ParisShootingProfile() TraceProfile { return tracegen.ParisShooting() }

// CollegeFootballProfile returns the synthetic profile shaped after the
// paper's College Football trace.
func CollegeFootballProfile() TraceProfile { return tracegen.CollegeFootball() }

// TruthAt evaluates a decoded estimate timeline at a point in time.
func TruthAt(estimates []Estimate, at time.Time) (TruthValue, bool) {
	return core.TruthAt(estimates, at)
}
