// Command experiments regenerates the paper's tables and figures on the
// synthetic traces and prints them to stdout.
//
// Usage:
//
//	experiments -exp all                 # everything (slow)
//	experiments -exp table3 -scale 0.02  # one artifact
//
// Experiments: table2, table3 (Boston), table4 (Paris), table5 (Football),
// fig4, fig5, fig6, fig7 (incl. churned-pool variant), robustness,
// ablation-window, ablation-cs, ablation-emissions, ablation-dependency,
// ablation-pid.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/social-sensing/sstd/internal/experiments"
	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/tracegen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() (retErr error) {
	var (
		exp        = flag.String("exp", "all", "experiment to run (comma separated), or all")
		scale      = flag.Float64("scale", 0.02, "trace scale relative to the paper's datasets")
		seed       = flag.Int64("seed", 7, "random seed")
		workers    = flag.Int("workers", 4, "SSTD worker pool size")
		cost       = flag.Duration("per-report-cost", 50*time.Microsecond, "modelled per-report preprocessing cost for the timing figures")
		telemetry  = flag.String("telemetry", "", "write the control-loop time series of the PID-driven experiments (fig6, ablation-pid) to this JSON file")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		mutexprofile = flag.String("mutexprofile", "", "write a mutex contention profile to this file on exit")
		blockprofile = flag.String("blockprofile", "", "write a goroutine blocking profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := obs.StartProfilingWith(obs.ProfileConfig{
		CPUPath:   *cpuprofile,
		MemPath:   *memprofile,
		MutexPath: *mutexprofile,
		BlockPath: *blockprofile,
	})
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	o := experiments.Options{
		Scale:         *scale,
		Seed:          *seed,
		Workers:       *workers,
		PerReportCost: *cost,
	}
	var controlLog *obs.ControlRecorder
	if *telemetry != "" {
		controlLog = obs.NewControlRecorder(0)
		o.ControlLog = controlLog
	}
	selected := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		selected[strings.TrimSpace(e)] = true
	}
	all := selected["all"]
	want := func(name string) bool { return all || selected[name] }

	w := os.Stdout
	if want("table2") {
		stats, err := experiments.TableII(o)
		if err != nil {
			return err
		}
		experiments.PrintTableII(w, stats)
		fmt.Fprintln(w)
	}
	accuracy := []struct {
		key   string
		title string
		prof  tracegen.Profile
	}{
		{"table3", "Table III - Boston Bombing", tracegen.BostonBombing()},
		{"table4", "Table IV - Paris Shooting", tracegen.ParisShooting()},
		{"table5", "Table V - College Football", tracegen.CollegeFootball()},
	}
	for _, a := range accuracy {
		if !want(a.key) {
			continue
		}
		reports, err := experiments.AccuracyTable(a.prof, o)
		if err != nil {
			return err
		}
		experiments.PrintAccuracyTable(w, a.title, reports)
		fmt.Fprintln(w)
	}
	if want("fig4") {
		for _, prof := range tracegen.Profiles() {
			pts, err := experiments.Fig4(prof, o)
			if err != nil {
				return err
			}
			experiments.PrintFig4(w, "Fig 4 - "+prof.Name, pts)
			fmt.Fprintln(w)
		}
	}
	if want("fig5") {
		// The streaming-speed experiment needs rates high enough that a
		// batch scheme's periodic re-run over all accumulated data
		// exceeds its 5 s re-run period. Generate a larger stream source
		// and charge a heavier (but still conservative) preprocessing
		// cost: the paper's Python pipeline spends well over 0.25 ms of
		// NLP per tweet.
		o5 := o
		if o5.Scale < 0.1 {
			o5.Scale = 0.1
		}
		o5.PerReportCost = 250 * time.Microsecond
		for _, prof := range tracegen.Profiles() {
			maxRate := int(float64(prof.TargetReports) * o5.Scale / experiments.StreamSeconds)
			var rates []int
			for _, r := range []int{50, 100, 200, 400} {
				if r <= maxRate {
					rates = append(rates, r)
				}
			}
			if len(rates) == 0 {
				fmt.Fprintf(w, "== Fig 5 - %s: trace too small at scale %v, skipping ==\n\n", prof.Name, o5.Scale)
				continue
			}
			pts, err := experiments.Fig5(prof, rates, o5)
			if err != nil {
				return err
			}
			experiments.PrintFig5(w, "Fig 5 - "+prof.Name, pts)
			fmt.Fprintln(w)
		}
	}
	// Per-interval volumes in Fig. 6 need to be in the paper's regime
	// (hundreds to thousands of reports per interval) for the distributed
	// pool to matter.
	o6 := o
	if o6.Scale < 0.1 {
		o6.Scale = 0.1
	}
	if want("fig6") {
		for _, prof := range tracegen.Profiles() {
			pts, err := experiments.Fig6(prof, o6)
			if err != nil {
				return err
			}
			experiments.PrintFig6(w, "Fig 6 - "+prof.Name, pts)
			fmt.Fprintln(w)
		}
	}
	if want("fig7") {
		series, err := experiments.Fig7(o)
		if err != nil {
			return err
		}
		experiments.PrintFig7(w, series)
		fmt.Fprintln(w)
		churned, err := experiments.Fig7Churn(o)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "-- heterogeneous pool with cycle-scavenging churn --")
		experiments.PrintFig7(w, churned)
		fmt.Fprintln(w)
	}
	if want("robustness") {
		pts, err := experiments.NoiseRobustness(tracegen.ParisShooting(), []float64{0.08, 0.15, 0.22, 0.3}, o)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "== Robustness - accuracy vs unreliable source fraction (Paris) ==")
		fmt.Fprintf(w, "%-14s", "Method")
		for _, p := range pts {
			fmt.Fprintf(w, " %9.0f%%", p.NoiseFrac*100)
		}
		fmt.Fprintln(w)
		methods := []string{"SSTD", "DynaTD", "TruthFinder", "RTD", "CATD", "Invest", "3-Estimates"}
		for _, m := range methods {
			fmt.Fprintf(w, "%-14s", m)
			for _, p := range pts {
				fmt.Fprintf(w, " %10.3f", p.Accuracy[m])
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	if want("ablation-window") {
		pts, err := experiments.AblationWindow(tracegen.BostonBombing(), []int{1, 2, 3, 5, 10, 20}, o)
		if err != nil {
			return err
		}
		experiments.PrintAblation(w, "Ablation - ACS sliding window (Boston)", pts)
		fmt.Fprintln(w)
	}
	if want("ablation-cs") {
		pts, err := experiments.AblationContribution(tracegen.ParisShooting(), o)
		if err != nil {
			return err
		}
		experiments.PrintAblation(w, "Ablation - contribution score components (Paris)", pts)
		fmt.Fprintln(w)
	}
	if want("ablation-emissions") {
		pts, err := experiments.AblationEmissions(tracegen.BostonBombing(), o)
		if err != nil {
			return err
		}
		experiments.PrintAblation(w, "Ablation - HMM emission family (Boston)", pts)
		fmt.Fprintln(w)
	}
	if want("ablation-dependency") {
		pts, err := experiments.AblationDependency(tracegen.BostonBombing(), o)
		if err != nil {
			return err
		}
		experiments.PrintAblation(w, "Ablation - claim dependency model (Boston, correlated claims)", pts)
		fmt.Fprintln(w)
	}
	if want("ablation-pid") {
		pts, err := experiments.AblationPID(tracegen.ParisShooting(), o6)
		if err != nil {
			return err
		}
		experiments.PrintFig6(w, "Ablation - allocation policy: RTO vs PID vs static (Paris)", pts)
		fmt.Fprintln(w)
	}
	if *telemetry != "" {
		if err := obs.WriteArtifactFile(*telemetry, nil, controlLog); err != nil {
			return fmt.Errorf("write telemetry: %w", err)
		}
		fmt.Fprintf(w, "control-loop telemetry written to %s (%d PID samples)\n", *telemetry, controlLog.Len())
	}
	return nil
}
