// Command sstdctl inspects a running master's cluster telemetry plane:
//
//	sstdctl -addr http://localhost:8080 query                 # list retained series
//	sstdctl query -series worker_tasks_executed_total \
//	       -label host=pool-worker-0 -since 5m -step 1s       # fetch points
//	sstdctl slo                                               # error-budget status
//	sstdctl dump                                              # trigger a cross-host flight dump
//	sstdctl dump -list                                        # list collected dumps
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/social-sensing/sstd/internal/sstdctl"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sstdctl:", err)
		os.Exit(1)
	}
}

// labelFlags collects repeatable -label k=v selectors.
type labelFlags map[string]string

func (l labelFlags) String() string { return fmt.Sprintf("%v", map[string]string(l)) }
func (l labelFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok || k == "" {
		return fmt.Errorf("label selector %q is not key=value", s)
	}
	l[k] = v
	return nil
}

func run(args []string) error {
	// A leading -addr may precede the subcommand.
	global := flag.NewFlagSet("sstdctl", flag.ContinueOnError)
	addr := global.String("addr", "http://localhost:8080", "master observability endpoint")
	if err := global.Parse(args); err != nil {
		return err
	}
	rest := global.Args()
	if len(rest) == 0 {
		return fmt.Errorf("usage: sstdctl [-addr URL] query|slo|dump [flags]")
	}
	c := &sstdctl.Client{Base: *addr}
	cmd, rest := rest[0], rest[1:]
	switch cmd {
	case "query":
		fs := flag.NewFlagSet("query", flag.ContinueOnError)
		series := fs.String("series", "", "series name (empty lists retained names)")
		since := fs.String("since", "", "lookback duration (5m) or RFC3339 instant")
		step := fs.String("step", "", "downsample bucket (1s)")
		limit := fs.Int("limit", 0, "max points per series")
		tail := fs.Int("tail", 5, "points shown per series")
		labels := labelFlags{}
		fs.Var(labels, "label", "label selector key=value (repeatable)")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		res, err := c.Query(sstdctl.QueryOpts{
			Series: *series, Labels: labels, Since: *since, Step: *step, Limit: *limit,
		})
		if err != nil {
			return err
		}
		fmt.Print(sstdctl.FormatQuery(res, *tail))
	case "slo":
		fs := flag.NewFlagSet("slo", flag.ContinueOnError)
		if err := fs.Parse(rest); err != nil {
			return err
		}
		statuses, err := c.SLO()
		if err != nil {
			return err
		}
		fmt.Print(sstdctl.FormatSLO(statuses))
	case "dump":
		fs := flag.NewFlagSet("dump", flag.ContinueOnError)
		list := fs.Bool("list", false, "list collected dumps instead of triggering one")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if *list {
			ds, err := c.Dumps()
			if err != nil {
				return err
			}
			fmt.Print(sstdctl.FormatDumps(ds))
			return nil
		}
		d, err := c.Dump()
		if err != nil {
			return err
		}
		fmt.Print(sstdctl.FormatDump(d))
	default:
		return fmt.Errorf("unknown command %q (want query|slo|dump)", cmd)
	}
	return nil
}
