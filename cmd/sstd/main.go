// Command sstd runs the full SSTD pipeline over a trace — either a file
// produced by the tracegen command or a freshly generated synthetic trace —
// and prints the decoded truth timelines and their accuracy against the
// trace's ground truth.
//
// Usage:
//
//	sstd -trace paris -scale 0.01                 # generate and run
//	sstd -in boston.json.gz -workers 8            # run a saved trace
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/social-sensing/sstd/internal/core"
	"github.com/social-sensing/sstd/internal/dtm"
	"github.com/social-sensing/sstd/internal/evalmetrics"
	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/socialsensing"
	"github.com/social-sensing/sstd/internal/sourcerel"
	"github.com/social-sensing/sstd/internal/tracegen"
	"github.com/social-sensing/sstd/internal/traceio"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sstd:", err)
		os.Exit(1)
	}
}

func run() (retErr error) {
	var (
		in         = flag.String("in", "", "trace file to process (from the tracegen command)")
		trace      = flag.String("trace", "paris", "synthetic profile when -in is absent: boston, paris or football")
		scale      = flag.Float64("scale", 0.01, "synthetic trace scale")
		seed       = flag.Int64("seed", 1, "random seed")
		workers    = flag.Int("workers", 4, "worker pool size (0 = run in-process without the distributed layer)")
		intervals  = flag.Int("intervals", 80, "HMM time steps across the trace")
		window     = flag.Int("window", 3, "ACS sliding window in intervals")
		show       = flag.Int("show", 3, "number of claim timelines to print")
		rank       = flag.Int("rank-sources", 0, "also print the N most / least reliable sources (0 = off)")
		telemetry  = flag.String("telemetry", "", "write a metrics + control-loop JSON artifact to this file")
		deadline   = flag.Duration("deadline", 0, "per-job deadline enabling the PID control loop (distributed runs only)")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		mutexprofile = flag.String("mutexprofile", "", "write a mutex contention profile to this file on exit")
		blockprofile = flag.String("blockprofile", "", "write a goroutine blocking profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := obs.StartProfilingWith(obs.ProfileConfig{
		CPUPath:   *cpuprofile,
		MemPath:   *memprofile,
		MutexPath: *mutexprofile,
		BlockPath: *blockprofile,
	})
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	tr, err := loadTrace(*in, *trace, *scale, *seed)
	if err != nil {
		return err
	}
	st := tr.Summarize()
	fmt.Printf("trace %s: %d reports, %d sources, %d claims over %s\n",
		st.Name, st.Reports, st.Sources, st.Claims, st.Duration)

	width := tr.Duration() / time.Duration(*intervals)
	cfg := core.DefaultConfig(tr.Start)
	cfg.ACS.Interval = width
	cfg.ACS.WindowIntervals = *window

	var tel sinks
	if *telemetry != "" {
		tel.metrics = obs.NewRegistry()
		tel.tracer = obs.NewTracer(0)
		tel.control = obs.NewControlRecorder(0)
	}

	start := time.Now()
	decoded, err := decode(tr, cfg, *workers, *seed, *deadline, tel)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if *telemetry != "" {
		if err := obs.WriteArtifactFile(*telemetry, tel.metrics, tel.control); err != nil {
			return fmt.Errorf("write telemetry: %w", err)
		}
		fmt.Printf("telemetry artifact written to %s (%d control samples, %d spans)\n",
			*telemetry, tel.control.Len(), tel.tracer.Total())
	}

	conf, err := evalmetrics.EvaluateDynamic(tr, func(c socialsensing.ClaimID, at time.Time) (socialsensing.TruthValue, bool) {
		return core.TruthAt(decoded[c], at)
	}, width)
	if err != nil {
		return err
	}
	rep := evalmetrics.ReportOf("SSTD", conf)
	fmt.Printf("decoded %d claims in %s\n", len(decoded), elapsed.Round(time.Millisecond))
	fmt.Printf("accuracy=%.3f precision=%.3f recall=%.3f f1=%.3f\n",
		rep.Accuracy, rep.Precision, rep.Recall, rep.F1)

	printTimelines(tr, decoded, *show)
	if *rank > 0 {
		if err := printSourceRanking(tr, decoded, *rank); err != nil {
			return err
		}
	}
	return nil
}

// printSourceRanking scores every source against the decoded truth and
// prints the extremes of the reliability ranking.
func printSourceRanking(tr *socialsensing.Trace, decoded map[socialsensing.ClaimID][]core.Estimate, n int) error {
	cfg := sourcerel.DefaultConfig()
	cfg.MinReports = 5
	ranked, err := sourcerel.Ranked(tr.Reports, func(c socialsensing.ClaimID, at time.Time) (socialsensing.TruthValue, bool) {
		return core.TruthAt(decoded[c], at)
	}, cfg)
	if err != nil {
		return fmt.Errorf("rank sources: %w", err)
	}
	if n > len(ranked) {
		n = len(ranked)
	}
	fmt.Printf("\nsource reliability (of %d sources with >= %d reports):\n", len(ranked), cfg.MinReports)
	fmt.Printf("%-32s %8s %9s %16s\n", "source", "reports", "accuracy", "95% interval")
	for _, e := range ranked[:n] {
		fmt.Printf("%-32s %8d %9.3f [%5.3f, %5.3f]\n", e.Source, e.Reports, e.Accuracy, e.Lower, e.Upper)
	}
	if len(ranked) > n {
		fmt.Println("...")
		for _, e := range ranked[len(ranked)-n:] {
			fmt.Printf("%-32s %8d %9.3f [%5.3f, %5.3f]\n", e.Source, e.Reports, e.Accuracy, e.Lower, e.Upper)
		}
	}
	return nil
}

func loadTrace(in, profile string, scale float64, seed int64) (*socialsensing.Trace, error) {
	if in != "" {
		return traceio.Load(in)
	}
	var prof tracegen.Profile
	switch profile {
	case "boston":
		prof = tracegen.BostonBombing()
	case "paris":
		prof = tracegen.ParisShooting()
	case "football":
		prof = tracegen.CollegeFootball()
	default:
		return nil, fmt.Errorf("unknown profile %q", profile)
	}
	g, err := tracegen.New(prof, seed)
	if err != nil {
		return nil, err
	}
	return g.Generate(scale)
}

// sinks groups the optional -telemetry outputs threaded into decode.
type sinks struct {
	metrics *obs.Registry
	tracer  *obs.Tracer
	control *obs.ControlRecorder
}

// decode runs either the in-process engine or the distributed manager.
func decode(tr *socialsensing.Trace, cfg core.Config, workers int, seed int64, deadline time.Duration, tel sinks) (map[socialsensing.ClaimID][]core.Estimate, error) {
	if workers <= 0 {
		cfg.Metrics = tel.metrics
		eng, err := core.NewEngine(cfg)
		if err != nil {
			return nil, err
		}
		if err := eng.IngestAll(tr.Reports); err != nil {
			return nil, err
		}
		return eng.DecodeAll()
	}
	mcfg := dtm.DefaultConfig(tr.Start)
	mcfg.ACS = cfg.ACS
	mcfg.Decoder = cfg.Decoder
	mcfg.Workers = workers
	mcfg.Seed = seed
	mcfg.Metrics = tel.metrics
	mcfg.Tracer = tel.tracer
	mcfg.ControlLog = tel.control
	if deadline > 0 {
		// Deadlines only matter if the PID loop can react to them; sample
		// well within the deadline so short jobs still see a few ticks.
		mcfg.EnableControl = true
		if s := deadline / 10; s < mcfg.SampleEvery {
			mcfg.SampleEvery = s
		}
	}
	m, err := dtm.New(mcfg)
	if err != nil {
		return nil, err
	}
	m.Start(context.Background())
	defer m.Close()
	byClaim := tr.ReportsByClaim()
	for claim, reports := range byClaim {
		if err := m.SubmitJob(claim, reports, deadline); err != nil {
			return nil, err
		}
	}
	out := make(map[socialsensing.ClaimID][]core.Estimate, len(byClaim))
	for range byClaim {
		res, ok := <-m.Results()
		if !ok {
			return nil, fmt.Errorf("manager results closed early")
		}
		if res.Err != nil {
			return nil, fmt.Errorf("claim %s: %w", res.Claim, res.Err)
		}
		out[res.Claim] = res.Estimates
	}
	return out, nil
}

// printTimelines renders the decoded truth of the busiest claims as
// compact T/F strips.
func printTimelines(tr *socialsensing.Trace, decoded map[socialsensing.ClaimID][]core.Estimate, show int) {
	byClaim := tr.ReportsByClaim()
	type sized struct {
		id socialsensing.ClaimID
		n  int
	}
	var order []sized
	for id, rs := range byClaim {
		order = append(order, sized{id, len(rs)})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].n != order[j].n {
			return order[i].n > order[j].n
		}
		return order[i].id < order[j].id
	})
	if show > len(order) {
		show = len(order)
	}
	for _, s := range order[:show] {
		est := decoded[s.id]
		strip := make([]byte, len(est))
		for i, e := range est {
			if e.Value == socialsensing.True {
				strip[i] = 'T'
			} else {
				strip[i] = 'f'
			}
		}
		fmt.Printf("%-28s (%5d reports) %s\n", s.id, s.n, strip)
	}
}
