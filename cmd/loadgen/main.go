// Command loadgen is the closed-loop load harness: it replays tracegen
// streams against an in-process master/worker cluster (full wire protocol
// over net.Pipe) at configurable arrival rates, sweeps the offered load
// per worker-pool size until the deadline-miss rate crosses a threshold,
// fits the capacity model against the paper's Eq. 10-12 WCET predictions,
// and validates the fitted model as an admission gate at 1.5x the knee.
//
//	loadgen -trace boston -scale 0.05 -workers 1,2,4 -out BENCH_load.json
//
// The -duration and -max-rate flags are hard safety caps: the sweep stops
// at whichever it hits first, marking the report truncated.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/social-sensing/sstd/internal/control"
	"github.com/social-sensing/sstd/internal/loadgen"
	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/obs/flightrec"
	"github.com/social-sensing/sstd/internal/obs/slo"
	"github.com/social-sensing/sstd/internal/obs/tsdb"
	"github.com/social-sensing/sstd/internal/socialsensing"
	"github.com/social-sensing/sstd/internal/tracegen"
	"github.com/social-sensing/sstd/internal/traceio"
	"github.com/social-sensing/sstd/internal/workqueue"
)

func main() {
	var (
		in      = flag.String("in", "", "trace file (from the tracegen command)")
		trace   = flag.String("trace", "boston", "built-in profile when -in is empty: boston|paris|football")
		scale   = flag.Float64("scale", 0.05, "volume scale for built-in profiles")
		seed    = flag.Int64("seed", 42, "seed for trace synthesis, arrivals and scheduling")
		workers = flag.String("workers", "1,2", "comma-separated worker-pool sizes to sweep")
		mode    = flag.String("mode", "open", "load shape: open (Poisson arrivals) | closed (fixed concurrency)")

		startRate  = flag.Float64("start-rate", 2, "first offered load (jobs/s in open mode, concurrency in closed)")
		rateFactor = flag.Float64("rate-factor", 2, "geometric ramp between steps")
		maxRate    = flag.Float64("max-rate", 256, "safety cap: stop the ramp at this offered load")
		duration   = flag.Duration("duration", 60*time.Second, "safety cap: total sweep wall-time budget")
		step       = flag.Duration("step", 2*time.Second, "measurement window per offered-load step")

		deadline      = flag.Duration("deadline", 500*time.Millisecond, "per-job completion budget")
		missThreshold = flag.Float64("miss-threshold", 0.5, "deadline-miss fraction that defines the knee")
		tasksPerJob   = flag.Int("tasks-per-job", 4, "tasks each TD job is split into")
		workDelay     = flag.Duration("work-delay", 0, "artificial per-report execution cost on workers")
		batch         = flag.Int("batch", 0, "master task-batch size: coalesce up to N tasks per wire frame with a pipelined ack window (0 = lock-step single-task frames)")
		admitFactor   = flag.Float64("admit-factor", 1.5, "admission validation offered load as a multiple of the knee rate (<= 0 skips)")

		theta1 = flag.Duration("theta1", 10*time.Microsecond, "Eq. 10 per-report execution cost for the WCET comparison")
		theta2 = flag.Duration("theta2", 40*time.Microsecond, "Eq. 11-12 distributed-execution constant")
		initT  = flag.Duration("init-time", time.Millisecond, "Eq. 10 task init time TI")

		schedShards = flag.Int("sched-shards", 0, "scheduler shard count on each step's master (0 = GOMAXPROCS)")

		out   = flag.String("out", "BENCH_load.json", "capacity report output path")
		quiet = flag.Bool("quiet", false, "suppress per-step progress lines")

		mutexprofile = flag.String("mutexprofile", "", "write a mutex contention profile to this file on exit")
		blockprofile = flag.String("blockprofile", "", "write a goroutine blocking profile to this file on exit")

		flightRecord = flag.String("flight-record", "", "enable the always-on flight recorder; deep-dive trace files land in this directory when an SLO trigger fires")
		flightDumpOn = flag.String("flight-dump-on", "all", "comma-separated triggers that dump a deep dive: deadline-miss, straggler, admission, quarantine, manual (or all)")

		telemetry = flag.String("telemetry", "", "optional address serving the cluster telemetry plane during the sweep: /metrics, /query (retained time-series), /slo (error budgets)")
		linger    = flag.Duration("linger", 0, "keep the -telemetry endpoint up this long after the sweep so sstdctl can inspect the retained store")
		sloTarget = flag.Float64("slo-target", 0.9, "deadline-hit-rate objective for the /slo error budget (needs -telemetry)")
		sloFast   = flag.Duration("slo-fast", 5*time.Minute, "fast burn-rate window")
		sloSlow   = flag.Duration("slo-slow", time.Hour, "slow burn-rate window")
		sloBurn   = flag.Float64("slo-burn", 14.4, "burn-rate multiple that fires the alert (both windows)")
	)
	flag.Parse()

	stopProf, err := obs.StartProfilingWith(obs.ProfileConfig{
		MutexPath: *mutexprofile,
		BlockPath: *blockprofile,
	})
	if err != nil {
		fatal(err)
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "loadgen: profile:", perr)
		}
	}()

	// Install before the sweep builds its clusters: probe rings bind at
	// component construction.
	flightRec, err := flightrec.EnableCLI(*flightRecord, *flightDumpOn, nil, nil,
		obs.NewLogger(os.Stderr, obs.LevelWarn, 0))
	if err != nil {
		fatal(err)
	}
	if flightRec != nil {
		fmt.Fprintf(os.Stderr, "loadgen: flight recorder armed: deep dives to %s on [%s]\n", *flightRecord, *flightDumpOn)
	}

	tr, err := loadTrace(*in, *trace, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	pools, err := parseWorkers(*workers)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The telemetry plane: one registry shared by every step's cluster (so
	// the dtm deadline counters accumulate across the sweep), a retained
	// time-series store fed by worker TelemetryShip frames plus a periodic
	// master self-scrape, and an SLO engine burning the deadline-hit-rate
	// error budget. Its firing edge trips the flight recorder (when armed),
	// which cascades into a cross-host FreezeRings collection on the
	// step's live cluster.
	var (
		reg       *obs.Registry
		store     *tsdb.Store
		sloEngine *slo.Engine
	)
	planeStop := make(chan struct{})
	defer close(planeStop)
	if *telemetry != "" {
		reg = obs.NewRegistry()
		store = tsdb.New(0)
		sloEngine = slo.New(slo.Config{Source: reg, Metrics: reg}, slo.Objective{
			Name: "deadline", Good: "dtm_deadline_hit_total", Bad: "dtm_deadline_miss_total",
			Target: *sloTarget, FastWindow: *sloFast, SlowWindow: *sloSlow, BurnThreshold: *sloBurn,
		})
		go sloEngine.Run(planeStop, 200*time.Millisecond)
		go func() {
			t := time.NewTicker(500 * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-planeStop:
					return
				case now := <-t.C:
					store.ScrapeRegistry(reg, "master", now)
				}
			}
		}()
		mux := http.NewServeMux()
		mux.Handle("/", obs.Handler(reg, nil, nil))
		mux.Handle("/query", store.Handler())
		mux.Handle("/slo", sloEngine.Handler())
		srv := &http.Server{Addr: *telemetry, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "loadgen: telemetry endpoint:", err)
			}
		}()
		defer func() { _ = srv.Close() }()
		fmt.Fprintf(os.Stderr, "loadgen: telemetry endpoint on %s (/metrics, /query, /slo)\n", *telemetry)
	}

	cfg := loadgen.Config{
		Trace:         tr,
		Workers:       pools,
		Mode:          *mode,
		StartRate:     *startRate,
		RateFactor:    *rateFactor,
		MaxRate:       *maxRate,
		Deadline:      *deadline,
		MissThreshold: *missThreshold,
		StepDuration:  *step,
		Duration:      *duration,
		TasksPerJob:   *tasksPerJob,
		WorkDelay:     *workDelay,
		TaskBatch:     *batch,
		AdmitFactor:   *admitFactor,
		Seed:          *seed,
		SchedShards:   *schedShards,
		WCET: control.WCETModel{
			InitTime: *initT,
			Theta1:   *theta1,
			Theta2:   *theta2,
		},
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
		}
	}
	if *telemetry != "" {
		cfg.Metrics = reg
		cfg.Telemetry = store
		if flightRec != nil {
			// Armed recorder + telemetry plane = cross-host collection: the
			// step's master broadcasts FreezeRings on a trip and merges the
			// workers' frozen rings (each pool worker gets its own recorder,
			// hence its own lane) into one cluster trace in -flight-record.
			cfg.FlightRec = flightRec
			cfg.ClusterDumps = &workqueue.ClusterDumpConfig{Dir: *flightRecord}
			var mu sync.Mutex
			wrecs := map[string]*flightrec.Recorder{}
			cfg.WorkerFlightRec = func(id string) *flightrec.Recorder {
				mu.Lock()
				defer mu.Unlock()
				if r, ok := wrecs[id]; ok {
					return r
				}
				r, err := flightrec.NewRecorder(flightrec.Config{})
				if err != nil {
					return nil
				}
				wrecs[id] = r
				return r
			}
		}
	}

	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fatal(err)
	}
	if err := rep.WriteFile(*out); err != nil {
		fatal(err)
	}
	printCapacityTable(rep)
	fmt.Printf("loadgen: report written to %s\n", *out)
	if *telemetry != "" && *linger > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: lingering %s on %s for inspection (interrupt to exit)\n", *linger, *telemetry)
		select {
		case <-ctx.Done():
		case <-time.After(*linger):
		}
	}
	if flightRec != nil {
		flightRec.Wait()
		for _, d := range flightRec.Dumps() {
			fmt.Printf("loadgen: flight recorder deep dive: %s (%s: %d events, %d spans)\n",
				d.Path, d.Trigger, d.Events, d.Spans)
		}
	}
}

// printCapacityTable renders the knee per pool size and the fitted model.
func printCapacityTable(rep *loadgen.Report) {
	fmt.Printf("capacity (%s mode, deadline %dms, miss threshold %.0f%%):\n",
		rep.Mode, rep.DeadlineMs, rep.MissThreshold*100)
	fmt.Printf("  %-8s %-10s %-9s %-10s %-10s %-8s %-8s\n",
		"workers", "knee-rate", "crossed", "jobs/s", "tasks/s", "miss%", "p95ms")
	for _, k := range rep.Knees {
		fmt.Printf("  %-8d %-10.1f %-9t %-10.2f %-10.2f %-8.1f %-8.1f\n",
			k.Workers, k.Rate, k.Crossed, k.JobsPerSec, k.TasksPerSec, k.MissRate*100, k.P95Ms)
	}
	f := rep.Fit
	fmt.Printf("  fit: %.2f tasks/s/worker (%.2f jobs/s/worker, R²=%.3f)\n",
		f.PerWorkerTasksPerSec, f.PerWorkerJobsPerSec, f.RSquared)
	fmt.Printf("  WCET Eq.10 predicts %.2f tasks/s/worker at D=%.1f reports/task (divergence %+.1f%%); effective θ2=%.1fµs/report\n",
		f.PredictedTasksPerSec, f.MeanTaskReports, f.DivergencePct, f.EffectiveTheta2Us)
	if av := rep.Admission; av != nil {
		fmt.Printf("  admission @ %.1f (%.1f× knee, %d workers): %d admitted miss %.0f%%, %d rejected (%d errtraced), held=%t\n",
			av.OfferedRate, av.AdmitFactor, av.Workers, av.Point.Submitted,
			av.AcceptedMissRate*100, av.Point.Rejected, av.RejectionTraces, av.Held)
	}
	if rep.Truncated {
		fmt.Println("  note: sweep truncated by -duration/-max-rate safety caps; knees marked crossed=false are lower bounds")
	}
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers entry %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-workers is empty")
	}
	return out, nil
}

func loadTrace(in, profile string, scale float64, seed int64) (*socialsensing.Trace, error) {
	if in != "" {
		return traceio.Load(in)
	}
	var prof tracegen.Profile
	switch profile {
	case "boston":
		prof = tracegen.BostonBombing()
	case "paris":
		prof = tracegen.ParisShooting()
	case "football":
		prof = tracegen.CollegeFootball()
	default:
		return nil, fmt.Errorf("unknown profile %q", profile)
	}
	g, err := tracegen.New(prof, seed)
	if err != nil {
		return nil, err
	}
	return g.Generate(scale)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
