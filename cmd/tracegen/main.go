// Command tracegen synthesizes a social sensing trace shaped after one of
// the paper's datasets and writes it to a JSON (optionally gzipped) file.
//
// Usage:
//
//	tracegen -trace boston -scale 0.01 -seed 7 -out boston.json.gz
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/social-sensing/sstd/internal/tracegen"
	"github.com/social-sensing/sstd/internal/traceio"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		trace = flag.String("trace", "boston", "trace profile: boston, paris or football")
		scale = flag.Float64("scale", 0.01, "trace size relative to the paper's dataset (1.0 = full)")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("out", "", "output path (.json or .json.gz); defaults to <trace>.json.gz")
	)
	flag.Parse()

	prof, err := profileByName(*trace)
	if err != nil {
		return err
	}
	g, err := tracegen.New(prof, *seed)
	if err != nil {
		return err
	}
	tr, err := g.Generate(*scale)
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = prof.Name + ".json.gz"
	}
	if err := traceio.Save(path, tr); err != nil {
		return err
	}
	st := tr.Summarize()
	fmt.Printf("wrote %s: %d reports, %d sources, %d claims over %s\n",
		path, st.Reports, st.Sources, st.Claims, st.Duration)
	return nil
}

func profileByName(name string) (tracegen.Profile, error) {
	switch name {
	case "boston", "boston-bombing":
		return tracegen.BostonBombing(), nil
	case "paris", "paris-shooting":
		return tracegen.ParisShooting(), nil
	case "football", "college-football":
		return tracegen.CollegeFootball(), nil
	default:
		return tracegen.Profile{}, fmt.Errorf("unknown trace %q (want boston, paris or football)", name)
	}
}
