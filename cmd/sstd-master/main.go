// Command sstd-master runs the SSTD Work Queue master over TCP: it loads or
// generates a trace, listens for sstd-worker processes, distributes the
// per-claim TD jobs across them and prints results as jobs complete.
//
// Usage:
//
//	sstd-master -listen :9123 -trace boston -scale 0.005 -min-workers 2
//
// then start one or more workers:
//
//	sstd-worker -master localhost:9123
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"github.com/social-sensing/sstd/internal/chaos"
	"github.com/social-sensing/sstd/internal/core"
	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/obs/flightrec"
	"github.com/social-sensing/sstd/internal/obs/slo"
	"github.com/social-sensing/sstd/internal/obs/tsdb"
	"github.com/social-sensing/sstd/internal/socialsensing"
	"github.com/social-sensing/sstd/internal/tracegen"
	"github.com/social-sensing/sstd/internal/traceio"
	"github.com/social-sensing/sstd/internal/workqueue"
)

// taskPayload mirrors the worker-side payload of cmd/sstd-worker: a chunk
// of one claim's reports plus the interval grid.
type taskPayload struct {
	Claim    socialsensing.ClaimID  `json:"claim"`
	Origin   time.Time              `json:"origin"`
	Interval time.Duration          `json:"interval_ns"`
	Reports  []socialsensing.Report `json:"reports"`
}

// taskOutput mirrors the worker's result: partial ACS interval sums.
type taskOutput struct {
	Sums map[int]float64 `json:"sums"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sstd-master:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen     = flag.String("listen", ":9123", "address to accept workers on")
		in         = flag.String("in", "", "trace file (from the tracegen command)")
		trace      = flag.String("trace", "paris", "synthetic profile when -in is absent")
		scale      = flag.Float64("scale", 0.005, "synthetic trace scale")
		seed       = flag.Int64("seed", 1, "random seed")
		intervals  = flag.Int("intervals", 80, "HMM time steps across the trace")
		window     = flag.Int("window", 3, "ACS sliding window in intervals")
		tasksPer   = flag.Int("tasks-per-job", 4, "tasks per TD job")
		minWorkers = flag.Int("min-workers", 1, "wait for this many workers before submitting")
		status     = flag.String("status", "", "optional address for the JSON status endpoint (e.g. :9124)")
		telemetry  = flag.String("telemetry", "", "optional address serving /metrics, /trace, /logs, /cluster, /status and /debug/pprof (e.g. :9125)")
		traceOut   = flag.String("trace-out", "", "write the merged Chrome trace_event file here at exit (implies tracing)")
		logLevel   = flag.String("log-level", "info", "structured log threshold: debug, info, warn or error")

		suspectAfter = flag.Duration("suspect-after", 3*time.Second, "mark a worker suspect after this long without a message (0 disables liveness)")
		deadAfter    = flag.Duration("dead-after", 10*time.Second, "evict a silent worker and requeue its task after this long (0 disables liveness)")
		straggler    = flag.Float64("straggler-factor", 2, "flag workers slower than this multiple of the cluster median exec time")

		taskTimeout = flag.Duration("task-timeout", 0, "requeue a task whose result has not arrived after this long (0 = wait forever)")
		batch       = flag.Int("batch", 0, "task-batch size: coalesce up to N tasks per wire frame to each worker, with a pipelined ack window (0 = lock-step single-task frames)")
		maxRetries  = flag.Int("max-retries", 0, "quarantine a task after this many lost attempts and finish its job degraded (0 = retry forever)")

		controlOut  = flag.String("control-out", "", "write the control/telemetry artifact (metrics snapshot + per-worker tick series) here at exit")
		sampleEvery = flag.Duration("sample-every", time.Second, "per-worker sampling period for -control-out")

		deadline      = flag.Duration("deadline", 0, "per-job completion budget fed to admission control (0 = none)")
		admissionRate = flag.Float64("admission-rate", 0, "fitted per-worker service rate (tasks/s) enabling admission control; jobs predicted past -deadline are rejected (from a loadgen capacity fit)")
		admissionShed = flag.Bool("admission-shed", false, "shed over-deadline jobs to a near-zero-priority lane instead of rejecting them")

		chaosSpec = flag.String("chaos-spec", "", "TEST ONLY: fault-injection spec applied to every accepted worker connection, e.g. drop=0.3,corrupt=0.05 (see internal/chaos)")
		chaosSeed = flag.Int64("chaos-seed", 0, "TEST ONLY: seed for the fault-injection schedule (overrides any seed in -chaos-spec)")

		flightRecord = flag.String("flight-record", "", "enable the always-on flight recorder; deep-dive trace files land in this directory when an SLO trigger fires")
		flightDumpOn = flag.String("flight-dump-on", "all", "comma-separated triggers that dump a deep dive: deadline-miss, straggler, admission, quarantine, manual (or all)")

		sloGood   = flag.String("slo-good", "wq_tasks_completed_total", "good-event counter for the error-budget objective (needs -telemetry)")
		sloBad    = flag.String("slo-bad", "wq_tasks_failed_total", "bad-event counter for the error-budget objective")
		sloTarget = flag.Float64("slo-target", 0.99, "success-ratio objective")
		sloFast   = flag.Duration("slo-fast", 5*time.Minute, "fast burn-rate window")
		sloSlow   = flag.Duration("slo-slow", time.Hour, "slow burn-rate window")
		sloBurn   = flag.Float64("slo-burn", 14.4, "burn-rate multiple that fires the alert (both windows)")

		schedShards = flag.Int("sched-shards", 0, "scheduler shard count (0 = GOMAXPROCS)")
		tsdbPoints  = flag.Int("tsdb-points", 0, "retained points per telemetry time series (0 = default 512)")

		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		mutexprofile = flag.String("mutexprofile", "", "write a mutex contention profile to this file on exit")
		blockprofile = flag.String("blockprofile", "", "write a goroutine blocking profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := obs.StartProfilingWith(obs.ProfileConfig{
		CPUPath:   *cpuprofile,
		MemPath:   *memprofile,
		MutexPath: *mutexprofile,
		BlockPath: *blockprofile,
	})
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "sstd-master: profile:", perr)
		}
	}()

	tr, err := loadTrace(*in, *trace, *scale, *seed)
	if err != nil {
		return err
	}
	st := tr.Summarize()
	fmt.Printf("trace %s: %d reports, %d claims\n", st.Name, st.Reports, st.Claims)

	logger := obs.NewLogger(os.Stderr, obs.ParseLogLevel(*logLevel), 0)
	var (
		metrics *obs.Registry
		tracer  *obs.Tracer
	)
	if *telemetry != "" || *controlOut != "" {
		metrics = obs.NewRegistry()
	}
	if *telemetry != "" || *traceOut != "" || *flightRecord != "" {
		// Flight-recorder deep dives merge the span timeline, so recording
		// implies tracing even without a telemetry endpoint.
		tracer = obs.NewTracer(0)
	}
	tracer.Instrument(metrics)
	// Install the recorder before building the master: probe rings bind
	// at component construction.
	flightRec, err := flightrec.EnableCLI(*flightRecord, *flightDumpOn, tracer, metrics, logger)
	if err != nil {
		return err
	}
	if flightRec != nil {
		fmt.Printf("flight recorder armed: deep dives to %s on [%s]\n", *flightRecord, *flightDumpOn)
	}
	var admission *workqueue.AdmissionConfig
	if *admissionRate > 0 {
		admission = &workqueue.AdmissionConfig{
			TaskRatePerWorker: *admissionRate,
			Deadline:          *deadline,
			Shed:              *admissionShed,
		}
	}
	// The telemetry plane: worker TelemetryShip frames land in the retained
	// time-series store alongside a 1s self-scrape of the master registry,
	// and the SLO engine burns its error budget from the configured counter
	// pair. Its firing edge trips the flight recorder (when armed), which
	// cascades into a cross-host FreezeRings collection.
	var (
		store     *tsdb.Store
		sloEngine *slo.Engine
	)
	planeStop := make(chan struct{})
	defer close(planeStop)
	if metrics != nil {
		store = tsdb.New(*tsdbPoints)
		go func() {
			t := time.NewTicker(time.Second)
			defer t.Stop()
			for {
				select {
				case <-planeStop:
					return
				case now := <-t.C:
					store.ScrapeRegistry(metrics, "master", now)
				}
			}
		}()
		sloEngine = slo.New(slo.Config{Source: metrics, Metrics: metrics, Logger: logger}, slo.Objective{
			Name: "tasks", Good: *sloGood, Bad: *sloBad,
			Target: *sloTarget, FastWindow: *sloFast, SlowWindow: *sloSlow, BurnThreshold: *sloBurn,
		})
		go sloEngine.Run(planeStop, time.Second)
	}
	var clusterDumps *workqueue.ClusterDumpConfig
	if *flightRecord != "" {
		clusterDumps = &workqueue.ClusterDumpConfig{Dir: *flightRecord}
	}
	master := workqueue.NewMaster(workqueue.MasterConfig{
		Seed: *seed, SchedShards: *schedShards, ResultBuffer: 256,
		Metrics: metrics, Tracer: tracer, Logger: logger,
		SuspectAfter:    *suspectAfter,
		DeadAfter:       *deadAfter,
		StragglerFactor: *straggler,
		TaskTimeout:     *taskTimeout,
		MaxRetries:      *maxRetries,
		BatchSize:       *batch,
		Admission:       admission,
		Telemetry:       store,
		FlightRec:       flightRec,
		ClusterDumps:    clusterDumps,
	})
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *listen, err)
	}
	if *chaosSpec != "" || *chaosSeed != 0 {
		spec, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			return fmt.Errorf("-chaos-spec: %w", err)
		}
		if *chaosSeed != 0 {
			spec.Seed = *chaosSeed
		}
		l = chaos.New(spec, metrics, tracer).Listen(l)
		fmt.Printf("CHAOS: fault injection armed (seed %d) — test use only\n", spec.Seed)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		if err := master.Serve(ctx, l); err != nil {
			fmt.Fprintln(os.Stderr, "sstd-master: serve:", err)
		}
	}()
	// Per-worker control sampling for the -control-out artifact: one tick
	// of health-registry rows every -sample-every. The final tick is
	// recorded at shutdown (below), so a run that finishes between ticks —
	// or entirely inside the first tick — still produces its end state.
	var recorder *obs.ControlRecorder
	samplerStop := make(chan struct{})
	samplerDone := make(chan struct{})
	if *controlOut != "" {
		recorder = obs.NewControlRecorder(0)
		go func() {
			defer close(samplerDone)
			t := time.NewTicker(*sampleEvery)
			defer t.Stop()
			for {
				select {
				case <-samplerStop:
					return
				case <-t.C:
					recordWorkerTick(recorder, master)
				}
			}
		}()
	} else {
		close(samplerDone)
	}
	if *status != "" {
		mux := http.NewServeMux()
		mux.Handle("/", master.StatusHandler())
		mux.Handle("/cluster", master.ClusterHandler())
		statusSrv := &http.Server{Addr: *status, Handler: mux}
		go func() {
			if err := statusSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "sstd-master: status endpoint:", err)
			}
		}()
		defer func() { _ = statusSrv.Close() }()
		fmt.Printf("status endpoint on %s (/, /cluster)\n", *status)
	}
	if *telemetry != "" {
		mux := http.NewServeMux()
		mux.Handle("/", obs.Handler(metrics, tracer, logger))
		mux.Handle("/cluster", master.ClusterHandler())
		mux.Handle("/status", master.StatusHandler())
		mux.Handle("/query", store.Handler())
		mux.Handle("/slo", sloEngine.Handler())
		if clusterDumps != nil {
			mux.Handle("/dump/cluster", master.ClusterDumpHandler())
		}
		if flightRec != nil {
			mux.Handle("/debug/flightrec", flightRec.Handler())
			mux.Handle("/debug/flightrec/", flightRec.Handler())
		}
		telemetrySrv := &http.Server{Addr: *telemetry, Handler: mux}
		go func() {
			if err := telemetrySrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "sstd-master: telemetry endpoint:", err)
			}
		}()
		defer func() { _ = telemetrySrv.Close() }()
		fmt.Printf("telemetry endpoint on %s (/metrics, /trace, /logs, /query, /slo, /cluster, /status, /debug/pprof)\n", *telemetry)
	}
	fmt.Printf("listening on %s, waiting for %d worker(s)...\n", l.Addr(), *minWorkers)
	for master.WorkerCount() < *minWorkers {
		time.Sleep(100 * time.Millisecond)
	}

	width := tr.Duration() / time.Duration(*intervals)
	byClaim := tr.ReportsByClaim()
	tasksPerJob := make(map[string]int, len(byClaim))
	jobSpans := make(map[string]*obs.Span, len(byClaim))
	taskTotal := 0
	rejected := 0
	for claim, reports := range byClaim {
		chunks := split(reports, *tasksPer)
		// One distributed trace per TD job: the root span's context rides
		// on every task, so the workers' stage spans land in the same
		// timeline (nil tracer = nil span = no tracing, same protocol).
		jobSpan := tracer.NewTrace("job " + string(claim))
		// Admission control (enabled by -admission-rate): refuse jobs the
		// capacity model predicts past their -deadline instead of letting
		// them queue up and miss anyway. The gate logs the rejection with
		// its errtrace return path.
		d := master.AdmitJob(string(claim), jobSpan.TraceID(), len(chunks), *deadline)
		if !d.Admit {
			jobSpan.SetAttr("admission", "rejected")
			jobSpan.Finish()
			rejected++
			fmt.Fprintf(os.Stderr, "sstd-master: job %s rejected: %v\n", claim, d.Err)
			continue
		}
		tasksPerJob[string(claim)] = len(chunks)
		jobSpans[string(claim)] = jobSpan
		var tc *workqueue.TraceContext
		if id := jobSpan.TraceID(); id != "" {
			tc = &workqueue.TraceContext{TraceID: id, ParentSpanID: jobSpan.SpanID()}
		}
		for i, chunk := range chunks {
			payload, err := json.Marshal(taskPayload{
				Claim: claim, Origin: tr.Start, Interval: width, Reports: chunk,
			})
			if err != nil {
				return err
			}
			task := workqueue.Task{
				ID:      fmt.Sprintf("%s/%d", claim, i),
				JobID:   string(claim),
				Payload: payload,
				Span:    jobSpan.SpanID(),
				Trace:   tc,
			}
			if err := master.Submit(task); err != nil {
				return err
			}
			taskTotal++
		}
		if d.Shed {
			// Degraded lane: near-zero scheduler weight, so the shed job
			// only drains on capacity the admitted jobs leave idle.
			master.SetJobPriority(string(claim), 0.001)
		}
	}
	admitted := len(tasksPerJob)
	fmt.Printf("submitted %d tasks across %d jobs", taskTotal, admitted)
	if rejected > 0 {
		fmt.Printf(" (%d jobs rejected by admission control)", rejected)
	}
	fmt.Println()

	// Merge partial sums per job and decode when each job completes.
	dec, err := core.NewDecoder(core.DefaultDecoderConfig())
	if err != nil {
		return err
	}
	sums := make(map[string]map[int]float64)
	done := make(map[string]int)
	failedTasks := make(map[string]int)
	start := time.Now()
	finished := 0
	for finished < admitted {
		res, ok := <-master.Results()
		if !ok {
			return fmt.Errorf("results closed with %d/%d jobs finished", finished, admitted)
		}
		if res.Err != "" {
			// A task that exhausted its retries (quarantined) or failed
			// terminally costs its chunk of data, not the run: the job
			// completes degraded from the partial sums, matching the DTM's
			// graceful-degradation policy.
			if *maxRetries == 0 {
				return fmt.Errorf("task failed at stage %q: %s", res.ErrStage, res.Err)
			}
			fmt.Fprintf(os.Stderr, "sstd-master: task %s failed (stage %q): %s\n", res.TaskID, res.ErrStage, res.Err)
			failedTasks[res.JobID]++
		} else {
			var out taskOutput
			if err := json.Unmarshal(res.Output, &out); err != nil {
				return fmt.Errorf("task %s output: %w", res.TaskID, err)
			}
			if sums[res.JobID] == nil {
				sums[res.JobID] = make(map[int]float64)
			}
			for idx, s := range out.Sums {
				sums[res.JobID][idx] += s
			}
		}
		done[res.JobID]++
		if done[res.JobID] == tasksPerJob[res.JobID] {
			finished++
			jobSpans[res.JobID].Finish()
			series := windowed(sums[res.JobID], *window)
			truth, err := dec.Decode(series)
			if err != nil {
				return fmt.Errorf("decode %s: %w", res.JobID, err)
			}
			trueCount := 0
			for _, v := range truth {
				if v == socialsensing.True {
					trueCount++
				}
			}
			degraded := ""
			if n := failedTasks[res.JobID]; n > 0 {
				degraded = fmt.Sprintf("  DEGRADED (%d/%d tasks lost)", n, tasksPerJob[res.JobID])
			}
			fmt.Printf("job %-28s done: %3d intervals, true in %3d%s\n", res.JobID, len(truth), trueCount, degraded)
		}
	}
	fmt.Printf("all %d jobs finished in %s across %d workers\n",
		admitted, time.Since(start).Round(time.Millisecond), master.WorkerCount())
	for _, h := range master.ClusterHealth() {
		flag := ""
		if h.Straggler {
			flag = "  STRAGGLER"
		}
		fmt.Printf("  worker %-20s %-8s tasks=%-4d exec=%6.1fms rate=%5.2f/s%s\n",
			h.ID, h.State, h.TasksCompleted, h.EWMAExecMs, h.TasksPerSec, flag)
	}
	// Flush the final control tick before teardown: the run usually ends
	// between sampler ticks, and without this the artifact would miss the
	// end state (or, for a run shorter than one tick, hold no rows at all).
	if recorder != nil {
		close(samplerStop)
		<-samplerDone
		recordWorkerTick(recorder, master)
	}
	cancel()
	master.Shutdown()
	if *controlOut != "" {
		if err := obs.WriteArtifactFile(*controlOut, metrics, recorder); err != nil {
			return fmt.Errorf("write control artifact %s: %w", *controlOut, err)
		}
		fmt.Printf("wrote control artifact to %s (%d worker samples)\n", *controlOut, len(recorder.WorkerSamples()))
	}
	if *traceOut != "" {
		// Shutdown first: the workers' final span flush (their last send
		// spans) arrives before the connections close, so the export is
		// complete.
		if err := tracer.WriteChromeTraceFile(*traceOut); err != nil {
			return fmt.Errorf("write trace %s: %w", *traceOut, err)
		}
		fmt.Printf("wrote Chrome trace to %s (%d spans)\n", *traceOut, tracer.Len())
	}
	if flightRec != nil {
		// Let a trip near shutdown land its deep-dive file before exit.
		flightRec.Wait()
		for _, d := range flightRec.Dumps() {
			fmt.Printf("flight recorder deep dive: %s (%s: %d events, %d spans)\n",
				d.Path, d.Trigger, d.Events, d.Spans)
		}
	}
	return nil
}

// recordWorkerTick appends one control tick of per-worker health rows
// (observed EWMA throughput, exec and transfer times, clock skew) to the
// recorder. The standalone master has no WCET model, so the prediction
// columns stay zero; the loadgen harness fills those in its capacity fit.
func recordWorkerTick(rec *obs.ControlRecorder, master *workqueue.Master) {
	rec.BeginTick()
	now := time.Now()
	for _, h := range master.ClusterHealth() {
		if h.State == workqueue.WorkerDead {
			continue
		}
		rec.RecordWorker(obs.WorkerSample{
			Time:               now,
			Worker:             h.ID,
			State:              string(h.State),
			TasksPerSec:        h.TasksPerSec,
			ObservedExecMs:     h.EWMAExecMs,
			MeasuredTransferMs: h.EWMATransferMs,
			ClockSkewMs:        h.ClockSkewMs,
			Straggler:          h.Straggler,
		})
	}
}

func loadTrace(in, profile string, scale float64, seed int64) (*socialsensing.Trace, error) {
	if in != "" {
		return traceio.Load(in)
	}
	var prof tracegen.Profile
	switch profile {
	case "boston":
		prof = tracegen.BostonBombing()
	case "paris":
		prof = tracegen.ParisShooting()
	case "football":
		prof = tracegen.CollegeFootball()
	default:
		return nil, fmt.Errorf("unknown profile %q", profile)
	}
	g, err := tracegen.New(prof, seed)
	if err != nil {
		return nil, err
	}
	return g.Generate(scale)
}

func split(reports []socialsensing.Report, n int) [][]socialsensing.Report {
	if n < 1 {
		n = 1
	}
	if len(reports) == 0 {
		return [][]socialsensing.Report{{}}
	}
	if n > len(reports) {
		n = len(reports)
	}
	size := len(reports) / n
	rem := len(reports) % n
	chunks := make([][]socialsensing.Report, 0, n)
	start := 0
	for i := 0; i < n; i++ {
		end := start + size
		if i < rem {
			end++
		}
		chunks = append(chunks, reports[start:end])
		start = end
	}
	return chunks
}

func windowed(sums map[int]float64, window int) []float64 {
	maxIdx := 0
	for idx := range sums {
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	dense := make([]float64, maxIdx+1)
	for idx, s := range sums {
		if idx >= 0 {
			dense[idx] = s
		}
	}
	if window < 1 {
		window = 1
	}
	out := make([]float64, len(dense))
	acc := 0.0
	for t := range dense {
		acc += dense[t]
		if t >= window {
			acc -= dense[t-window]
		}
		out[t] = acc
	}
	return out
}
