// Command sstd-worker is a Work Queue worker process: it connects to an
// sstd-master over TCP, pulls TD tasks (chunks of one claim's reports),
// computes partial Aggregated Contribution Score sums and returns them.
// Start as many as the machine allows; the master balances work across all
// connected workers.
//
// While running it heartbeats to the master (so a hung worker is evicted
// rather than stalling the cluster) and periodically ships a telemetry
// snapshot: task counts, exec-time histogram, connection byte counters,
// goroutines and heap. The same numbers can be served locally with
// -telemetry, alongside /debug/pprof for on-the-spot profiling.
//
// Usage:
//
//	sstd-worker -master localhost:9123 -id worker-a -telemetry :9200
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/social-sensing/sstd/internal/chaos"
	"github.com/social-sensing/sstd/internal/obs"
	"github.com/social-sensing/sstd/internal/obs/flightrec"
	"github.com/social-sensing/sstd/internal/socialsensing"
	"github.com/social-sensing/sstd/internal/workqueue"
)

// taskPayload mirrors cmd/sstd-master's task encoding.
type taskPayload struct {
	Claim    socialsensing.ClaimID  `json:"claim"`
	Origin   time.Time              `json:"origin"`
	Interval time.Duration          `json:"interval_ns"`
	Reports  []socialsensing.Report `json:"reports"`
}

type taskOutput struct {
	Sums map[int]float64 `json:"sums"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sstd-worker:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		master     = flag.String("master", "localhost:9123", "master address")
		id         = flag.String("id", "", "worker id (defaults to host-pid)")
		heartbeat  = flag.Duration("heartbeat", time.Second, "liveness ping interval to the master (0 disables)")
		statsEvery = flag.Int("stats-every", 5, "ship a telemetry snapshot every N heartbeats")
		telemetry  = flag.String("telemetry", "", "optional address serving /metrics, /trace, /logs and /debug/pprof (e.g. :9200)")
		logLevel   = flag.String("log-level", "info", "structured log threshold: debug, info, warn or error")

		execTimeout = flag.Duration("exec-timeout", 0, "per-task execution budget; a task past it is cancelled and reported failed (0 = none)")
		maxBatch    = flag.Int("max-batch", 0, "largest task batch to accept per wire frame (0 = a generous default, -1 = refuse batching, lock-step frames only)")
		reconnects  = flag.Int("reconnects", 0, "reconnect with backoff after connection loss, giving up after this many consecutive failed attempts (0 = exit on first loss)")

		chaosSpec = flag.String("chaos-spec", "", "TEST ONLY: fault-injection spec, e.g. drop=0.3,corrupt=0.05,delay=0.1:1ms-5ms (see internal/chaos)")
		chaosSeed = flag.Int64("chaos-seed", 0, "TEST ONLY: seed for the fault-injection schedule (overrides any seed in -chaos-spec)")

		flightRecord = flag.String("flight-record", "", "enable the always-on flight recorder; deep-dive trace files land in this directory when an SLO trigger fires")
		flightDumpOn = flag.String("flight-dump-on", "all", "comma-separated triggers that dump a deep dive: deadline-miss, straggler, admission, quarantine, manual (or all)")

		mutexprofile = flag.String("mutexprofile", "", "write a mutex contention profile to this file on exit")
		blockprofile = flag.String("blockprofile", "", "write a goroutine blocking profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := obs.StartProfilingWith(obs.ProfileConfig{
		MutexPath: *mutexprofile,
		BlockPath: *blockprofile,
	})
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "sstd-worker: profile:", perr)
		}
	}()

	workerID := *id
	if workerID == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		workerID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logger := obs.NewLogger(os.Stderr, obs.ParseLogLevel(*logLevel), 0)
	var (
		metrics *obs.Registry
		tracer  *obs.Tracer
	)
	if *telemetry != "" || *flightRecord != "" {
		metrics = obs.NewRegistry()
		tracer = obs.NewTracer(0)
		tracer.Instrument(metrics)
	}
	// Install the recorder before the worker builds its codec: probe
	// rings bind at component construction.
	flightRec, err := flightrec.EnableCLI(*flightRecord, *flightDumpOn, tracer, metrics, logger)
	if err != nil {
		return err
	}
	if flightRec != nil {
		defer flightRec.Wait()
		fmt.Printf("flight recorder armed: deep dives to %s on [%s]\n", *flightRecord, *flightDumpOn)
	}
	if *telemetry != "" {
		mux := http.NewServeMux()
		mux.Handle("/", obs.Handler(metrics, tracer, logger))
		if flightRec != nil {
			mux.Handle("/debug/flightrec", flightRec.Handler())
			mux.Handle("/debug/flightrec/", flightRec.Handler())
		}
		telemetrySrv := &http.Server{Addr: *telemetry, Handler: mux}
		go func() {
			if err := telemetrySrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "sstd-worker: telemetry endpoint:", err)
			}
		}()
		defer func() { _ = telemetrySrv.Close() }()
		fmt.Printf("telemetry endpoint on %s (/metrics, /trace, /logs, /debug/pprof, /debug/flightrec)\n", *telemetry)
	}

	w := &workqueue.Worker{
		ID:             workerID,
		Exec:           execute,
		HeartbeatEvery: *heartbeat,
		StatsEvery:     *statsEvery,
		ExecTimeout:    *execTimeout,
		MaxBatch:       *maxBatch,
		MaxReconnects:  *reconnects,
		Metrics:        metrics,
		Tracer:         tracer,
		Logger:         logger,
		// With a recorder armed the worker answers the master's FreezeRings
		// broadcasts (and ships its own trips), so this host's probe events
		// land on a lane in the master's merged cluster trace.
		FlightRec: flightRec,
	}
	if *chaosSpec != "" || *chaosSeed != 0 {
		spec, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			return fmt.Errorf("-chaos-spec: %w", err)
		}
		if *chaosSeed != 0 {
			spec.Seed = *chaosSeed
		}
		inj := chaos.New(spec, metrics, tracer)
		w.WrapConn = func(c net.Conn) net.Conn { return inj.WrapConn("worker/"+workerID, c) }
		w.Exec = inj.WrapExec("exec/"+workerID, execute, nil)
		fmt.Printf("CHAOS: fault injection armed (seed %d) — test use only\n", spec.Seed)
	}
	fmt.Printf("worker %s connecting to %s\n", workerID, *master)
	if *reconnects > 0 {
		err = w.Redial(ctx, *master)
	} else {
		err = w.Dial(ctx, *master)
	}
	if err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	fmt.Println("worker done")
	return nil
}

// execute computes the partial per-interval contribution score sums for a
// chunk of reports (the SSTD preprocessing step). Failures are tagged with
// the pipeline stage so the master's result carries provenance, and the
// same stages are timed as spans on the task's distributed trace.
func execute(ctx context.Context, payload []byte) ([]byte, error) {
	decode := workqueue.StartStageSpan(ctx, workqueue.StageDecode)
	var p taskPayload
	if err := json.Unmarshal(payload, &p); err != nil {
		return nil, workqueue.StageError(workqueue.StageDecode, fmt.Errorf("bad payload: %w", err))
	}
	if p.Interval <= 0 {
		return nil, workqueue.StageError(workqueue.StageDecode, errors.New("payload has no interval"))
	}
	decode.Finish()
	out := taskOutput{Sums: make(map[int]float64)}
	for _, r := range p.Reports {
		idx := 0
		if r.Timestamp.After(p.Origin) {
			idx = int(r.Timestamp.Sub(p.Origin) / p.Interval)
		}
		out.Sums[idx] += r.ContributionScore()
	}
	encode := workqueue.StartStageSpan(ctx, workqueue.StageEncode)
	b, err := json.Marshal(out)
	if err != nil {
		return nil, workqueue.StageError(workqueue.StageEncode, err)
	}
	encode.Finish()
	return b, nil
}
