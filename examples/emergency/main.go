// Emergency: the full raw-text pipeline on a Boston-Bombing-style event.
// Unlike quickstart, reports start life as raw tweets: the example runs the
// paper's entire preprocessing chain — keyword filtering + online
// clustering to derive claims from text, then attitude / uncertainty /
// independence scoring to build contribution scores — before the HMM
// engine decodes each discovered claim's evolving truth.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"github.com/social-sensing/sstd"
)

func main() {
	// Synthesize a small Boston-like trace. We use only its raw texts
	// and timestamps; claims are re-derived from the text below, exactly
	// as the paper's claim generator does with real tweets.
	gen, err := sstd.NewTraceGenerator(sstd.BostonBombingProfile(), 11)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := gen.Generate(0.002)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingesting %d raw posts from %d sources\n", len(trace.Reports), len(trace.Sources))

	// Claim generation: keyword filter + streaming Jaccard clustering.
	clusterCfg := sstd.DefaultClusterConfig()
	clusterCfg.Keywords = sstd.BostonBombingProfile().Keywords
	clusterer := sstd.NewClusterer(clusterCfg)

	// Semantic scoring: attitude lexicon, hedge classifier, retweet
	// detection.
	scorer := sstd.NewScorer()

	// Truth discovery engine over the derived claims.
	engineCfg := sstd.DefaultConfig(trace.Start)
	engineCfg.ACS.Interval = trace.Duration() / 80
	engineCfg.ACS.WindowIntervals = 3
	engine, err := sstd.NewEngine(engineCfg)
	if err != nil {
		log.Fatal(err)
	}

	kept := 0
	for _, raw := range trace.Reports {
		clusterID, ok := clusterer.Assign(raw.Text, raw.Timestamp)
		if !ok {
			continue // filtered: no event keyword
		}
		kept++
		report := scorer.ScorePost(sstd.Post{
			Source:    raw.Source,
			Claim:     sstd.ClaimID(clusterID),
			Timestamp: raw.Timestamp,
			Text:      raw.Text,
		})
		if err := engine.Ingest(report); err != nil {
			log.Fatal(err)
		}
	}
	clusters := clusterer.Clusters()
	fmt.Printf("kept %d posts after keyword filtering, derived %d claims\n", kept, len(clusters))

	decoded, err := engine.DecodeAll()
	if err != nil {
		log.Fatal(err)
	}

	// Show the five largest claims with their decoded truth strips.
	sort.Slice(clusters, func(i, j int) bool { return clusters[i].Size > clusters[j].Size })
	show := 5
	if show > len(clusters) {
		show = len(clusters)
	}
	fmt.Println("\nlargest derived claims and their decoded truth timelines:")
	for _, cl := range clusters[:show] {
		estimates := decoded[sstd.ClaimID(cl.ID)]
		strip := ""
		for _, e := range estimates {
			if e.Value == sstd.True {
				strip += "T"
			} else {
				strip += "f"
			}
		}
		tokens := make([]string, 0, 4)
		for tok := range cl.Centroid {
			tokens = append(tokens, tok)
			if len(tokens) == 4 {
				break
			}
		}
		sort.Strings(tokens)
		fmt.Printf("%-12s %5d posts  topic~%v\n  %s\n", cl.ID, cl.Size, tokens, strip)
	}

	// Demonstrate a live query on the busiest claim.
	if len(clusters) > 0 {
		busiest := sstd.ClaimID(clusters[0].ID)
		at := trace.Start.Add(trace.Duration() / 2)
		if v, ok := sstd.TruthAt(decoded[busiest], at); ok {
			fmt.Printf("\nat %s, claim %s is estimated %v\n", at.Format(time.RFC822), busiest, v)
		}
	}
}
