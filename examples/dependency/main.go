// Dependency: the claim-correlation extension (paper §VII). Claims about
// the same situation carry evidence for each other — weather in nearby
// cities, the score and the crowd reaction. This example generates a trace
// whose claims come in correlated groups, estimates the dependency graph
// from the claims' evidence series, and shows correlated neighbours
// reinforcing each claim's truth posterior.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"
	"time"

	"github.com/social-sensing/sstd"
)

func main() {
	// Generate a Boston-like trace whose claims form correlated blocks
	// of three (a third of block members mirror their leader's truth).
	prof := sstd.BostonBombingProfile()
	prof.CorrelationGroupSize = 3
	prof.AntiCorrelationProb = 0.33
	gen, err := sstd.NewTraceGenerator(prof, 17)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := gen.Generate(0.005)
	if err != nil {
		log.Fatal(err)
	}

	cfg := sstd.DefaultConfig(trace.Start)
	cfg.ACS.Interval = trace.Duration() / 80
	engine, err := sstd.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range trace.Reports {
		if err := engine.Ingest(r); err != nil {
			log.Fatal(err)
		}
	}

	// Per-claim evidence series and smoothed truth posteriors.
	series := make(map[sstd.ClaimID][]float64)
	posteriors := make(map[sstd.ClaimID][]float64)
	for _, c := range trace.Claims {
		s := engine.ACSSeries(c.ID)
		if len(s) == 0 {
			continue
		}
		p, err := engine.PosteriorClaim(c.ID)
		if err != nil {
			log.Fatal(err)
		}
		series[c.ID] = s
		posteriors[c.ID] = p
	}

	graph, err := sstd.EstimateDependencies(series, sstd.DefaultDependencyConfig())
	if err != nil {
		log.Fatal(err)
	}
	edges := graph.Edges()
	fmt.Printf("estimated dependency graph over %d claims: %d edges\n", len(series), len(edges))
	sort.Slice(edges, func(i, j int) bool { return math.Abs(edges[i].R) > math.Abs(edges[j].R) })
	show := 6
	if show > len(edges) {
		show = len(edges)
	}
	for _, e := range edges[:show] {
		kind := "correlated"
		if e.R < 0 {
			kind = "anti-correlated"
		}
		fmt.Printf("  %-28s <-> %-28s R=%+.2f (%s, %d co-observed intervals)\n",
			e.A, e.B, e.R, kind, e.Support)
	}

	// Smooth posteriors with neighbour evidence and compare how many
	// interval calls flip.
	smoothed := graph.Smooth(posteriors)
	flips, total := 0, 0
	var flippedClaims []string
	for id, p := range posteriors {
		q := smoothed[id]
		changedHere := 0
		for t := range p {
			total++
			if (p[t] >= 0.5) != (q[t] >= 0.5) {
				flips++
				changedHere++
			}
		}
		if changedHere > 0 {
			flippedClaims = append(flippedClaims, fmt.Sprintf("%s(%d)", id, changedHere))
		}
	}
	sort.Strings(flippedClaims)
	fmt.Printf("\nneighbour smoothing revised %d of %d interval estimates\n", flips, total)
	if len(flippedClaims) > 0 {
		fmt.Printf("claims touched: %v\n", flippedClaims)
	}

	// Accuracy with and without the dependency model.
	acc := func(ps map[sstd.ClaimID][]float64) float64 {
		correct, n := 0, 0
		for id, p := range ps {
			for t := range p {
				at := trace.Start.Add(time.Duration(t) * cfg.ACS.Interval)
				truth, ok := trace.TruthAt(id, at)
				if !ok {
					continue
				}
				n++
				if (p[t] >= 0.5) == (truth == sstd.True) {
					correct++
				}
			}
		}
		if n == 0 {
			return 0
		}
		return float64(correct) / float64(n)
	}
	fmt.Printf("\naccuracy independent:        %.3f\n", acc(posteriors))
	fmt.Printf("accuracy dependency-aware:   %.3f\n", acc(smoothed))
}
