// Quickstart: the smallest useful SSTD program. A handful of sources
// report on one evolving claim ("there is a shooting on campus"); the
// engine ingests the reports and decodes the claim's truth minute by
// minute, recovering the moment the situation was cleared.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/social-sensing/sstd"
)

func main() {
	start := time.Date(2016, 11, 28, 7, 0, 0, 0, time.UTC)

	eng, err := sstd.NewEngine(sstd.DefaultConfig(start))
	if err != nil {
		log.Fatal(err)
	}

	// Simulate 60 minutes of reports: the claim is true for the first 25
	// minutes, then debunked. Sources are noisy — 20% report the wrong
	// state — and a few hedge or retweet.
	rng := rand.New(rand.NewSource(42))
	const claim = sstd.ClaimID("campus-shooting")
	for minute := 0; minute < 60; minute++ {
		actuallyTrue := minute < 25
		for k := 0; k < 6; k++ {
			correct := rng.Float64() < 0.8
			att := sstd.Disagree
			if actuallyTrue == correct {
				att = sstd.Agree
			}
			report := sstd.Report{
				Source:       sstd.SourceID(fmt.Sprintf("user-%d", k)),
				Claim:        claim,
				Timestamp:    start.Add(time.Duration(minute) * time.Minute),
				Attitude:     att,
				Uncertainty:  0.1 + 0.3*rng.Float64(),
				Independence: 0.9,
			}
			if err := eng.Ingest(report); err != nil {
				log.Fatal(err)
			}
		}
	}

	estimates, err := eng.DecodeClaim(claim)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("decoded truth timeline (one column per minute):")
	for _, e := range estimates {
		if e.Value == sstd.True {
			fmt.Print("T")
		} else {
			fmt.Print("f")
		}
	}
	fmt.Println()

	// Query the timeline at arbitrary instants.
	for _, probe := range []int{10, 40} {
		at := start.Add(time.Duration(probe) * time.Minute)
		v, _ := sstd.TruthAt(estimates, at)
		fmt.Printf("at minute %2d the claim is estimated %v\n", probe, v)
	}
}
