// Sports: streaming truth discovery on a College-Football-style trace.
// Score-change claims flip frequently (every touchdown), so this example
// replays the trace interval by interval — the way a live deployment sees
// it — re-decoding after each batch and measuring how quickly the engine
// tracks each truth flip, compared against the evolving ground truth.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/social-sensing/sstd"
)

func main() {
	gen, err := sstd.NewTraceGenerator(sstd.CollegeFootballProfile(), 3)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := gen.Generate(0.004)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replaying %d reports over %s as a live stream\n",
		len(trace.Reports), trace.Duration())

	const steps = 60
	width := trace.Duration() / steps

	cfg := sstd.DefaultConfig(trace.Start)
	cfg.ACS.Interval = width
	cfg.ACS.WindowIntervals = 3
	engine, err := sstd.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Pick the busiest claim to follow live.
	byClaim := trace.ReportsByClaim()
	var followed sstd.ClaimID
	most := 0
	for id, rs := range byClaim {
		if len(rs) > most {
			followed, most = id, len(rs)
		}
	}
	fmt.Printf("following claim %s (%d reports)\n\n", followed, most)

	// Stream interval by interval: ingest the batch, re-decode, compare
	// the newest estimate with ground truth.
	next := 0
	correct, total := 0, 0
	fmt.Println("step  reports  estimate  truth  verdict")
	for step := 0; step < steps; step++ {
		cutoff := trace.Start.Add(time.Duration(step+1) * width)
		batch := 0
		for next < len(trace.Reports) && trace.Reports[next].Timestamp.Before(cutoff) {
			if err := engine.Ingest(trace.Reports[next]); err != nil {
				log.Fatal(err)
			}
			next++
			batch++
		}
		estimates, err := engine.DecodeClaim(followed)
		if err != nil {
			// The claim may not have arrived yet.
			continue
		}
		now := cutoff.Add(-width / 2)
		est, ok := sstd.TruthAt(estimates, now)
		if !ok {
			continue
		}
		truth, ok := trace.TruthAt(followed, now)
		if !ok {
			continue
		}
		total++
		verdict := "MISS"
		if est == truth {
			correct++
			verdict = "ok"
		}
		if step%5 == 0 || verdict == "MISS" {
			fmt.Printf("%4d  %7d  %8v  %5v  %s\n", step, batch, est, truth, verdict)
		}
	}
	fmt.Printf("\nlive tracking accuracy on %s: %.1f%% (%d/%d steps)\n",
		followed, 100*float64(correct)/float64(total), correct, total)
}
