// Distributed: the Dynamic Task Manager with PID feedback control. A
// Paris-Shooting-style trace is processed as per-claim TD jobs with soft
// deadlines on an elastic in-process worker pool; the PID loop watches job
// progress, re-prioritizes late jobs and resizes the pool. The example
// prints each job's outcome and how the pool adapted.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/social-sensing/sstd"
)

func main() {
	gen, err := sstd.NewTraceGenerator(sstd.ParisShootingProfile(), 9)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := gen.Generate(0.005)
	if err != nil {
		log.Fatal(err)
	}

	cfg := sstd.DefaultManagerConfig(trace.Start)
	cfg.ACS.Interval = trace.Duration() / 80
	cfg.ACS.WindowIntervals = 3
	cfg.Workers = 2 // start small; the controller may grow the pool
	cfg.TasksPerJob = 4
	cfg.EnableControl = true
	cfg.SampleEvery = 20 * time.Millisecond
	cfg.WorkDelay = 100 * time.Microsecond // emulate preprocessing cost

	// Telemetry: metrics + per-tick control-loop samples, summarized below.
	metrics := sstd.NewMetricsRegistry()
	control := sstd.NewControlRecorder(0)
	cfg.Metrics = metrics
	cfg.ControlLog = control

	manager, err := sstd.NewManager(cfg)
	if err != nil {
		log.Fatal(err)
	}
	manager.Start(context.Background())
	defer manager.Close()

	byClaim := trace.ReportsByClaim()
	const deadline = 400 * time.Millisecond
	fmt.Printf("submitting %d TD jobs (%d reports) with %s deadlines on %d workers\n",
		len(byClaim), len(trace.Reports), deadline, cfg.Workers)

	submitted := 0
	for claim, reports := range byClaim {
		if err := manager.SubmitJob(claim, reports, deadline); err != nil {
			log.Fatal(err)
		}
		submitted++
	}

	met := 0
	for i := 0; i < submitted; i++ {
		res := <-manager.Results()
		if res.Err != nil {
			log.Fatalf("job %s: %v", res.Claim, res.Err)
		}
		status := "MISSED"
		if res.MetDeadline {
			status = "met"
			met++
		}
		fmt.Printf("job %-28s finished in %8s  deadline %s  intervals=%d\n",
			res.Claim, res.Elapsed.Round(time.Millisecond), status, len(res.Estimates))
	}
	fmt.Printf("\n%d/%d deadlines met; pool ended at %d workers (started at %d)\n",
		met, submitted, manager.Workers(), cfg.Workers)

	// Per-worker health summary from the master's cluster registry: every
	// worker the run touched (including ones released by pool shrinks),
	// with its liveness state, task count and smoothed exec time.
	fmt.Println("\nworker            state    tasks  exec(ewma)  rate")
	for _, h := range manager.ClusterHealth() {
		flag := ""
		if h.Straggler {
			flag = "  STRAGGLER"
		}
		fmt.Printf("%-17s %-8s %5d  %8.2fms  %4.1f/s%s\n",
			h.ID, h.State, h.TasksCompleted, h.EWMAExecMs, h.TasksPerSec, flag)
	}

	// One-line telemetry summary: deadline hit rate from the counters and
	// job latency quantiles from the dtm_job_latency_ms histogram.
	snap := metrics.Snapshot()
	hit := snap.Counters["dtm_deadline_hit_total"]
	miss := snap.Counters["dtm_deadline_miss_total"]
	lat := snap.Histograms["dtm_job_latency_ms"]
	fmt.Printf("telemetry: deadline hit rate %.0f%% (%d/%d), job latency p50=%.0fms p99=%.0fms, %d PID ticks recorded\n",
		100*float64(hit)/float64(hit+miss), hit, hit+miss, lat.P50, lat.P99, control.Len())
}
