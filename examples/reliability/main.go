// Reliability: recover per-source reliability from decoded truth — the
// other half of the truth discovery problem statement. SSTD never needs
// per-source reliability online (that is what makes its jobs decompose per
// claim), but once truth timelines are decoded, every source's track
// record falls out: score each report against the decoded truth and
// interval-estimate the source's accuracy. The example checks the ranking
// against the generator's hidden reliabilities.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/social-sensing/sstd"
)

func main() {
	gen, err := sstd.NewTraceGenerator(sstd.BostonBombingProfile(), 23)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := gen.Generate(0.01)
	if err != nil {
		log.Fatal(err)
	}

	cfg := sstd.DefaultConfig(trace.Start)
	cfg.ACS.Interval = trace.Duration() / 80
	engine, err := sstd.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range trace.Reports {
		if err := engine.Ingest(r); err != nil {
			log.Fatal(err)
		}
	}
	decoded, err := engine.DecodeAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decoded %d claims from %d reports by %d sources\n",
		len(decoded), len(trace.Reports), len(trace.Sources))

	truth := func(c sstd.ClaimID, at time.Time) (sstd.TruthValue, bool) {
		return sstd.TruthAt(decoded[c], at)
	}
	relCfg := sstd.DefaultSourceRelConfig()
	relCfg.MinReports = 10 // rank only sources with a real track record
	ranked, err := sstd.RankSources(trace.Reports, truth, relCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d sources have >= %d stance-bearing reports\n\n",
		len(ranked), relCfg.MinReports)

	hidden := make(map[sstd.SourceID]float64, len(trace.Sources))
	for _, s := range trace.Sources {
		hidden[s.ID] = s.Reliability
	}

	show := 5
	if show > len(ranked) {
		show = len(ranked)
	}
	fmt.Println("most reliable (by Wilson lower bound):")
	fmt.Printf("%-30s %8s %14s %18s %s\n", "source", "reports", "est. accuracy", "95% interval", "hidden reliability")
	for _, e := range ranked[:show] {
		fmt.Printf("%-30s %8d %14.3f [%5.3f, %5.3f]   %.2f\n",
			e.Source, e.Reports, e.Accuracy, e.Lower, e.Upper, hidden[e.Source])
	}
	fmt.Println("\nleast reliable:")
	for _, e := range ranked[len(ranked)-show:] {
		fmt.Printf("%-30s %8d %14.3f [%5.3f, %5.3f]   %.2f\n",
			e.Source, e.Reports, e.Accuracy, e.Lower, e.Upper, hidden[e.Source])
	}

	// Quantify the agreement between estimated ranking and hidden truth.
	q := len(ranked) / 4
	if q > 0 {
		top, bottom := 0.0, 0.0
		for i := 0; i < q; i++ {
			top += hidden[ranked[i].Source]
			bottom += hidden[ranked[len(ranked)-1-i].Source]
		}
		fmt.Printf("\nhidden reliability, top quartile of estimates:    %.3f\n", top/float64(q))
		fmt.Printf("hidden reliability, bottom quartile of estimates: %.3f\n", bottom/float64(q))
	}
}
